//! Model-based property tests: every queue must behave exactly like a
//! bounded `VecDeque` under arbitrary push/pop interleavings
//! (single-threaded — concurrency is covered by the stress tests in the
//! unit suites; these pin the sequential semantics the pipeline builds
//! on: FIFO order, capacity behaviour, emptiness).

use dp_queue::{
    spsc_ring, FailingTransport, FaultPlan, LockQueue, MpmcQueue, Shared, SpscTransport, Transport,
    TransportReceiver, TransportSender, WorkerQueue,
};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u32),
    Pop,
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![3 => any::<u32>().prop_map(Op::Push), 2 => Just(Op::Pop)],
        1..max,
    )
}

fn check_against_model<Q: WorkerQueue<u32>>(cap_pow2: usize, ops: &[Op]) {
    let q = Q::with_capacity(cap_pow2);
    let mut model: VecDeque<u32> = VecDeque::new();
    for &op in ops {
        match op {
            Op::Push(v) => {
                let model_full = model.len() >= cap_pow2;
                match q.push(v) {
                    Ok(()) => {
                        assert!(!model_full, "queue accepted a push beyond capacity");
                        model.push_back(v);
                    }
                    Err(back) => {
                        assert_eq!(back, v, "rejected push must return the value");
                        assert!(model_full, "queue rejected a push while below capacity");
                    }
                }
            }
            Op::Pop => {
                assert_eq!(q.pop(), model.pop_front(), "FIFO order diverged");
            }
        }
    }
    // Drain: remaining contents must match exactly.
    while let Some(expect) = model.pop_front() {
        assert_eq!(q.pop(), Some(expect));
    }
    assert_eq!(q.pop(), None);
}

/// The same model check, phrased against the split-endpoint [`Transport`]
/// abstraction the engine is actually generic over. Capacities are powers
/// of two so the SPSC ring's round-up doesn't change the bound.
fn check_transport_model<X: Transport<u32>>(transport: &X, cap_pow2: usize, ops: &[Op]) {
    let (tx, rx) = transport.channel(0, cap_pow2);
    let mut model: VecDeque<u32> = VecDeque::new();
    for &op in ops {
        match op {
            Op::Push(v) => {
                let model_full = model.len() >= cap_pow2;
                match tx.push(v) {
                    Ok(()) => {
                        assert!(!model_full, "{}: push accepted beyond capacity", X::kind());
                        model.push_back(v);
                    }
                    Err(back) => {
                        assert_eq!(back, v, "{}: rejected push must return the value", X::kind());
                        assert!(model_full, "{}: push rejected below capacity", X::kind());
                    }
                }
            }
            Op::Pop => {
                assert_eq!(rx.pop(), model.pop_front(), "{}: FIFO order diverged", X::kind());
            }
        }
    }
    while let Some(expect) = model.pop_front() {
        assert_eq!(rx.pop(), Some(expect));
    }
    assert_eq!(rx.pop(), None);
    assert!(tx.memory_usage() >= cap_pow2 * std::mem::size_of::<u32>());
}

/// The pipeline's shutdown protocol: the router pushes its backlog and a
/// sentinel, the worker (another thread) drains until the sentinel. Every
/// transport must deliver the full backlog, in order, across the thread
/// boundary.
fn check_shutdown_drain<X: Transport<u32>>(transport: &X) {
    const N: u32 = 10_000;
    const SHUTDOWN: u32 = u32::MAX;
    let (tx, rx) = transport.channel(0, 16);
    let worker = std::thread::spawn(move || {
        let mut got = Vec::new();
        loop {
            match rx.pop() {
                Some(SHUTDOWN) => break,
                Some(v) => got.push(v),
                None => std::thread::yield_now(),
            }
        }
        got
    });
    for i in 0..N {
        let mut v = i;
        while let Err(back) = tx.push(v) {
            v = back;
            std::thread::yield_now();
        }
    }
    let mut s = SHUTDOWN;
    while let Err(back) = tx.push(s) {
        s = back;
        std::thread::yield_now();
    }
    let got = worker.join().unwrap();
    assert_eq!(got.len() as u32, N, "{}: events lost before shutdown", X::kind());
    assert!(got.iter().copied().eq(0..N), "{}: drain order diverged", X::kind());
}

#[test]
fn all_transports_drain_on_shutdown() {
    check_shutdown_drain(&Shared::<MpmcQueue<u32>>::default());
    check_shutdown_drain(&Shared::<LockQueue<u32>>::default());
    check_shutdown_drain(&SpscTransport);
}

/// The shutdown-drain protocol must also survive queue-level chaos: with
/// seeded spurious full/empty results both sides retry, and every message
/// still arrives exactly once, in order.
#[test]
fn chaotic_transports_still_drain_on_shutdown() {
    for seed in [3u64, 17, 99] {
        let plan = FaultPlan::none().with_seed(seed).with_spurious(25, 25);
        check_shutdown_drain(&FailingTransport::new(SpscTransport, plan.clone()));
        check_shutdown_drain(&FailingTransport::new(Shared::<MpmcQueue<u32>>::default(), plan));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mpmc_matches_model(ops in ops(300), cap_shift in 1u32..6) {
        check_against_model::<MpmcQueue<u32>>(1 << cap_shift, &ops);
    }

    #[test]
    fn transports_match_model(ops in ops(300), cap_shift in 1u32..6) {
        check_transport_model(&Shared::<MpmcQueue<u32>>::default(), 1 << cap_shift, &ops);
        check_transport_model(&Shared::<LockQueue<u32>>::default(), 1 << cap_shift, &ops);
        check_transport_model(&SpscTransport, 1 << cap_shift, &ops);
        // A FailingTransport with no scheduled faults is transparent: it
        // must satisfy the very same bounded-queue model.
        check_transport_model(
            &FailingTransport::new(SpscTransport, FaultPlan::none()),
            1 << cap_shift,
            &ops,
        );
    }

    #[test]
    fn lockqueue_matches_model(ops in ops(300), cap_shift in 1u32..6) {
        check_against_model::<LockQueue<u32>>(1 << cap_shift, &ops);
    }

    #[test]
    fn spsc_matches_model(ops in ops(300), cap_shift in 1u32..6) {
        let cap = 1usize << cap_shift;
        let (p, c) = spsc_ring::<u32>(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for &op in &ops {
            match op {
                Op::Push(v) => match p.push(v) {
                    Ok(()) => {
                        prop_assert!(model.len() < cap);
                        model.push_back(v);
                    }
                    Err(back) => {
                        prop_assert_eq!(back, v);
                        prop_assert!(model.len() >= cap);
                    }
                },
                Op::Pop => {
                    prop_assert_eq!(c.pop(), model.pop_front());
                }
            }
        }
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(c.pop(), Some(expect));
        }
        prop_assert_eq!(c.pop(), None);
    }
}

/// Cross-thread FIFO per producer through the MPMC queue: with two
/// producers pushing tagged sequences, each producer's values must arrive
/// in its program order (the property the parallel pipeline's per-address
/// soundness rests on).
#[test]
fn mpmc_per_producer_fifo_under_concurrency() {
    use std::sync::Arc;
    const PER: u64 = 20_000;
    let q = Arc::new(MpmcQueue::<u64>::new(128));
    let mut handles = Vec::new();
    for p in 0..2u64 {
        let q = q.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..PER {
                let mut v = (p << 32) | i;
                while let Err(back) = q.push(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        }));
    }
    let mut last = [0u64, 0];
    let mut seen = 0u64;
    while seen < 2 * PER {
        if let Some(v) = q.pop() {
            let p = (v >> 32) as usize;
            let i = v & 0xffff_ffff;
            assert!(i == 0 || i >= last[p], "producer {p} out of order: {i} after {}", last[p]);
            last[p] = i;
            seen += 1;
        } else {
            std::thread::yield_now();
        }
    }
    for h in handles {
        h.join().unwrap();
    }
}
