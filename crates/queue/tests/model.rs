//! Model-based property tests: every queue must behave exactly like a
//! bounded `VecDeque` under arbitrary push/pop interleavings
//! (single-threaded — concurrency is covered by the stress tests in the
//! unit suites; these pin the sequential semantics the pipeline builds
//! on: FIFO order, capacity behaviour, emptiness).

use dp_queue::{spsc_ring, LockQueue, MpmcQueue, WorkerQueue};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u32),
    Pop,
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![3 => any::<u32>().prop_map(Op::Push), 2 => Just(Op::Pop)],
        1..max,
    )
}

fn check_against_model<Q: WorkerQueue<u32>>(cap_pow2: usize, ops: &[Op]) {
    let q = Q::with_capacity(cap_pow2);
    let mut model: VecDeque<u32> = VecDeque::new();
    for &op in ops {
        match op {
            Op::Push(v) => {
                let model_full = model.len() >= cap_pow2;
                match q.push(v) {
                    Ok(()) => {
                        assert!(!model_full, "queue accepted a push beyond capacity");
                        model.push_back(v);
                    }
                    Err(back) => {
                        assert_eq!(back, v, "rejected push must return the value");
                        assert!(model_full, "queue rejected a push while below capacity");
                    }
                }
            }
            Op::Pop => {
                assert_eq!(q.pop(), model.pop_front(), "FIFO order diverged");
            }
        }
    }
    // Drain: remaining contents must match exactly.
    while let Some(expect) = model.pop_front() {
        assert_eq!(q.pop(), Some(expect));
    }
    assert_eq!(q.pop(), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mpmc_matches_model(ops in ops(300), cap_shift in 1u32..6) {
        check_against_model::<MpmcQueue<u32>>(1 << cap_shift, &ops);
    }

    #[test]
    fn lockqueue_matches_model(ops in ops(300), cap_shift in 1u32..6) {
        check_against_model::<LockQueue<u32>>(1 << cap_shift, &ops);
    }

    #[test]
    fn spsc_matches_model(ops in ops(300), cap_shift in 1u32..6) {
        let cap = 1usize << cap_shift;
        let (p, c) = spsc_ring::<u32>(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for &op in &ops {
            match op {
                Op::Push(v) => match p.push(v) {
                    Ok(()) => {
                        prop_assert!(model.len() < cap);
                        model.push_back(v);
                    }
                    Err(back) => {
                        prop_assert_eq!(back, v);
                        prop_assert!(model.len() >= cap);
                    }
                },
                Op::Pop => {
                    prop_assert_eq!(c.pop(), model.pop_front());
                }
            }
        }
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(c.pop(), Some(expect));
        }
        prop_assert_eq!(c.pop(), None);
    }
}

/// Cross-thread FIFO per producer through the MPMC queue: with two
/// producers pushing tagged sequences, each producer's values must arrive
/// in its program order (the property the parallel pipeline's per-address
/// soundness rests on).
#[test]
fn mpmc_per_producer_fifo_under_concurrency() {
    use std::sync::Arc;
    const PER: u64 = 20_000;
    let q = Arc::new(MpmcQueue::<u64>::new(128));
    let mut handles = Vec::new();
    for p in 0..2u64 {
        let q = q.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..PER {
                let mut v = (p << 32) | i;
                while let Err(back) = q.push(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        }));
    }
    let mut last = [0u64, 0];
    let mut seen = 0u64;
    while seen < 2 * PER {
        if let Some(v) = q.pop() {
            let p = (v >> 32) as usize;
            let i = v & 0xffff_ffff;
            assert!(
                i == 0 || i >= last[p],
                "producer {p} out of order: {i} after {}",
                last[p]
            );
            last[p] = i;
            seen += 1;
        } else {
            std::thread::yield_now();
        }
    }
    for h in handles {
        h.join().unwrap();
    }
}
