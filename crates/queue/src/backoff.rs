//! Bounded exponential backoff for lock-free retry loops.
//!
//! Modeled on crossbeam's `Backoff`: start with `spin_loop` hints, escalate
//! to `yield_now` once spinning is clearly not helping. Producers use it
//! when a worker queue is full (applying backpressure on the instrumented
//! program); workers use it when their queue runs empty.

/// Exponential spin/yield backoff.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Fresh backoff (shortest spin).
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Resets to the shortest spin after progress was made.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Waits one escalation step: `2^step` spin hints while `step` is
    /// small, an OS yield afterwards.
    pub fn snooze(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// True once spinning has escalated past the spin phase; callers that
    /// can block (e.g. the lock-based queue) may switch strategy then.
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }
}

/// A [`Backoff`] with a hard deadline: the waiting side of bounded
/// backpressure. A producer facing a full queue cannot distinguish "the
/// worker is briefly behind" from "the worker is stalled or dead"; the
/// deadline converts the second case from an unbounded hang into an
/// explicit, accountable decision (drop the message, re-route it, abandon
/// the worker).
#[derive(Debug)]
pub struct DeadlineBackoff {
    backoff: Backoff,
    deadline: std::time::Instant,
}

impl DeadlineBackoff {
    /// A backoff that reports expiry once `timeout` has elapsed.
    pub fn new(timeout: std::time::Duration) -> Self {
        DeadlineBackoff { backoff: Backoff::new(), deadline: std::time::Instant::now() + timeout }
    }

    /// Waits one escalation step. Returns `false` once the deadline has
    /// passed (without waiting further); the caller must then stop
    /// retrying and resolve the contention another way.
    pub fn snooze(&mut self) -> bool {
        if self.expired() {
            return false;
        }
        self.backoff.snooze();
        true
    }

    /// True once the deadline has passed.
    pub fn expired(&self) -> bool {
        std::time::Instant::now() >= self.deadline
    }

    /// Restarts the escalation (progress was made) without moving the
    /// deadline.
    pub fn reset(&mut self) {
        self.backoff.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_and_saturates() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..YIELD_LIMIT + 2 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn deadline_backoff_expires() {
        let mut b = DeadlineBackoff::new(std::time::Duration::from_millis(10));
        assert!(!b.expired());
        assert!(b.snooze());
        let start = std::time::Instant::now();
        while b.snooze() {
            assert!(start.elapsed() < std::time::Duration::from_secs(5), "deadline never fired");
        }
        assert!(b.expired());
        assert!(!b.snooze(), "an expired backoff must keep refusing");
    }

    #[test]
    fn deadline_backoff_zero_timeout_is_immediately_expired() {
        let mut b = DeadlineBackoff::new(std::time::Duration::ZERO);
        assert!(b.expired());
        assert!(!b.snooze());
    }
}
