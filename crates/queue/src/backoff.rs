//! Bounded exponential backoff for lock-free retry loops.
//!
//! Modeled on crossbeam's `Backoff`: start with `spin_loop` hints, escalate
//! to `yield_now` once spinning is clearly not helping. Producers use it
//! when a worker queue is full (applying backpressure on the instrumented
//! program); workers use it when their queue runs empty.

/// Exponential spin/yield backoff.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Fresh backoff (shortest spin).
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Resets to the shortest spin after progress was made.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Waits one escalation step: `2^step` spin hints while `step` is
    /// small, an OS yield afterwards.
    pub fn snooze(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// True once spinning has escalated past the spin phase; callers that
    /// can block (e.g. the lock-based queue) may switch strategy then.
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_and_saturates() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..YIELD_LIMIT + 2 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
