//! The lock-based comparator queue (Section VI-B1).
//!
//! Figure 5 compares the lock-free profiler against an otherwise identical
//! lock-based build; this queue is the only component swapped. It is a
//! bounded mutex-protected deque so that, like the lock-free queues, it
//! applies backpressure rather than growing without bound.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// Bounded, mutex-protected FIFO.
pub struct LockQueue<T> {
    inner: Mutex<VecDeque<T>>,
    cap: usize,
}

impl<T> LockQueue<T> {
    /// Creates a queue holding at most `cap` elements.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(2);
        LockQueue { inner: Mutex::new(VecDeque::with_capacity(cap)), cap }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Attempts to enqueue; returns the value back when full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut q = self.inner.lock();
        if q.len() >= self.cap {
            return Err(value);
        }
        q.push_back(value);
        Ok(())
    }

    /// Attempts to dequeue; `None` if empty.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Bytes attributable to this queue.
    pub fn memory_usage(&self) -> usize {
        self.cap * std::mem::size_of::<T>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_bounds() {
        let q = LockQueue::new(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.push(4), Err(4));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_sum_preserved() {
        let q = Arc::new(LockQueue::new(64));
        let total: u64 = (0..4u64 * 10_000).sum();
        let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let n = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for p in 0..4u64 {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        let mut v = p * 10_000 + i;
                        while let Err(b) = q.push(v) {
                            v = b;
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let q = q.clone();
                let got = got.clone();
                let n = n.clone();
                s.spawn(move || loop {
                    if let Some(v) = q.pop() {
                        got.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                        if n.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1 == 40_000 {
                            return;
                        }
                    } else if n.load(std::sync::atomic::Ordering::Relaxed) == 40_000 {
                        return;
                    } else {
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(got.load(std::sync::atomic::Ordering::Relaxed), total);
    }
}
