//! Bounded lock-free single-producer single-consumer ring buffer.
//!
//! The sequential-target pipeline of Figure 2 has exactly one producer (the
//! main thread running the instrumented program) and one consumer per
//! queue (the owning worker), so an SPSC ring with cached indices is the
//! lowest-overhead transport possible: one relaxed load + one release store
//! per operation in the common case. The type system enforces the
//! single-producer/single-consumer contract by splitting the ring into a
//! [`SpscProducer`] and a [`SpscConsumer`] handle, neither of which is
//! `Clone`.

use crate::CachePadded;
use std::cell::{Cell as StdCell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the producer will write (written by producer only).
    tail: CachePadded<AtomicUsize>,
    /// Next slot the consumer will read (written by consumer only).
    head: CachePadded<AtomicUsize>,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Only one thread can be dropping the last Arc; plain loads are fine.
        let mut head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        while head != tail {
            unsafe { (*self.buf[head & self.mask].get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

/// Producer half of an SPSC ring. `!Clone`; move it to the producing thread.
pub struct SpscProducer<T> {
    inner: Arc<Inner<T>>,
    cached_head: StdCell<usize>,
}

/// Consumer half of an SPSC ring. `!Clone`; move it to the consuming thread.
pub struct SpscConsumer<T> {
    inner: Arc<Inner<T>>,
    cached_tail: StdCell<usize>,
}

// The handles own their side's cached index; sending the handle to another
// thread is fine, sharing it is not (no Sync).
unsafe impl<T: Send> Send for SpscProducer<T> {}
unsafe impl<T: Send> Send for SpscConsumer<T> {}

/// Creates an SPSC ring with capacity `cap` (rounded up to a power of two,
/// minimum 2), returning the two endpoint handles.
pub fn spsc_ring<T>(cap: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    let cap = cap.max(2).next_power_of_two();
    let inner = Arc::new(Inner {
        buf: (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
        mask: cap - 1,
        tail: CachePadded(AtomicUsize::new(0)),
        head: CachePadded(AtomicUsize::new(0)),
    });
    (
        SpscProducer { inner: inner.clone(), cached_head: StdCell::new(0) },
        SpscConsumer { inner, cached_tail: StdCell::new(0) },
    )
}

impl<T> SpscProducer<T> {
    /// Attempts to enqueue; returns the value back if the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let inner = &*self.inner;
        let tail = inner.tail.load(Ordering::Relaxed);
        // Fast path: trust the cached head; refresh only when it claims full.
        if tail.wrapping_sub(self.cached_head.get()) > inner.mask {
            self.cached_head.set(inner.head.load(Ordering::Acquire));
            if tail.wrapping_sub(self.cached_head.get()) > inner.mask {
                return Err(value);
            }
        }
        unsafe { (*inner.buf[tail & inner.mask].get()).write(value) };
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// True once the [`SpscConsumer`] has been dropped (the worker thread
    /// holding it exited). A full ring with a closed consumer will never
    /// drain, so producers use this to fail fast instead of spinning.
    pub fn is_closed(&self) -> bool {
        Arc::strong_count(&self.inner) <= 1
    }

    /// Bytes attributable to this ring (counted once, on the producer
    /// side, which the profiling engine keeps alive for accounting after
    /// the consumer has moved into its worker thread).
    pub fn memory_usage(&self) -> usize {
        (self.inner.mask + 1) * std::mem::size_of::<T>() + std::mem::size_of::<Inner<T>>()
    }
}

impl<T> SpscConsumer<T> {
    /// Attempts to dequeue; `None` if empty.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        if head == self.cached_tail.get() {
            self.cached_tail.set(inner.tail.load(Ordering::Acquire));
            if head == self.cached_tail.get() {
                return None;
            }
        }
        let value = unsafe { (*inner.buf[head & inner.mask].get()).assume_init_read() };
        inner.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Bytes attributable to this ring (counted once, on the consumer side).
    pub fn memory_usage(&self) -> usize {
        (self.inner.mask + 1) * std::mem::size_of::<T>() + std::mem::size_of::<Inner<T>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_full_empty() {
        let (p, c) = spsc_ring::<u32>(4);
        assert_eq!(c.pop(), None);
        for i in 0..4 {
            p.push(i).unwrap();
        }
        assert!(p.push(9).is_err());
        for i in 0..4 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn wraparound() {
        let (p, c) = spsc_ring::<u64>(2);
        for i in 0..10_000u64 {
            p.push(i).unwrap();
            assert_eq!(c.pop(), Some(i));
        }
    }

    #[test]
    fn cross_thread_order() {
        const N: u64 = 100_000;
        let (p, c) = spsc_ring::<u64>(128);
        let h = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                while let Err(back) = p.push(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        });
        let mut expect = 0;
        while expect < N {
            if let Some(v) = c.pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::thread::yield_now();
            }
        }
        h.join().unwrap();
    }

    #[test]
    fn closed_consumer_is_observable() {
        let (p, c) = spsc_ring::<u32>(4);
        assert!(!p.is_closed());
        drop(c);
        assert!(p.is_closed());
    }

    #[test]
    fn drop_releases_remaining() {
        use std::sync::atomic::AtomicU64;
        struct D(Arc<AtomicU64>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        {
            let (p, _c) = spsc_ring::<D>(8);
            for _ in 0..3 {
                assert!(p.push(D(drops.clone())).is_ok());
            }
        }
        assert_eq!(drops.load(Ordering::Relaxed), 3);
    }
}
