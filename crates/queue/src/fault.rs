//! Deterministic fault injection for the profiling pipeline.
//!
//! The paper's central trade-off is *graceful degradation*: signatures
//! bound memory by accepting a quantified accuracy loss (Section III-B,
//! Formula 2). The fault-tolerance layer extends the same philosophy to
//! the runtime — a worker panic, a stalled queue or a lost migration
//! reply degrades the profile instead of aborting it. Recovery code that
//! is only exercised by real crashes is recovery code that does not work;
//! this module makes every failure mode *schedulable*, so the recovery
//! paths run under seeded, reproducible tests.
//!
//! Two layers:
//!
//! - [`FaultPlan`] — a declarative script of engine-level faults ("panic
//!   worker 2 after 5 chunks", "stall worker 1 from chunk 0", "drop the
//!   first migration reply"). The profiling engines consult the plan at
//!   well-defined points in their worker loops; with [`FaultPlan::none`]
//!   (the default) every hook is a branch on a `None`.
//! - [`FailingTransport`] — a [`Transport`] decorator that injects
//!   *queue-level* chaos: seeded spurious push failures (the channel
//!   claims to be full when it is not) and spurious empty pops (the
//!   channel claims to be empty when it is not). Both are pure
//!   performance faults — no message is ever lost or reordered — so a
//!   correct engine must produce bit-identical dependence sets through
//!   any seed, which is exactly what the chaos suite asserts.
//!
//! The engine hooks and the transport decorator are compiled behind the
//! `fault-inject` cargo feature (on by default so the test suites run
//! everywhere; production builds that want the hooks gone compile
//! `dp-queue`/`dp-core` with `--no-default-features`).

/// One worker-targeted fault: trigger on worker `worker` after it has
/// processed `after_chunks` event chunks (0 = before the first chunk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFault {
    /// The worker the fault targets.
    pub worker: usize,
    /// Event chunks the worker processes before the fault fires.
    pub after_chunks: u64,
}

impl WorkerFault {
    /// Parses the command-line spelling `worker@chunks` (e.g. `2@5`).
    pub fn parse(s: &str) -> Option<WorkerFault> {
        let (w, n) = s.split_once('@')?;
        Some(WorkerFault { worker: w.parse().ok()?, after_chunks: n.parse().ok()? })
    }
}

/// A deterministic, declarative script of faults to inject into one
/// profiling run. See the [module docs](self) for the philosophy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the [`FailingTransport`] RNG streams (each endpoint
    /// derives its own stream from `seed` and its worker id, so runs are
    /// reproducible regardless of thread interleaving).
    pub seed: u64,
    /// Panic worker *k* after *n* chunks (inside its worker loop, where
    /// the supervisor's `catch_unwind` contains it).
    pub panic_worker: Option<WorkerFault>,
    /// Stall worker *k* after *n* chunks: the worker stops consuming its
    /// queue but stays alive, parking until the supervisor abandons it.
    /// This is the scenario bounded backpressure exists for.
    pub stall_worker: Option<WorkerFault>,
    /// Drop the *n*-th (0-based) migration `Extracted` reply instead of
    /// sending it to the router: the migrated signature state is lost and
    /// the router's in-flight entry must be resolved by the drain
    /// deadline, not by the reply.
    pub drop_nth_extract_reply: Option<u64>,
    /// [`FailingTransport`]: percentage (0–100) of pushes that spuriously
    /// report "full".
    pub spurious_send_fail_pct: u8,
    /// [`FailingTransport`]: percentage (0–100) of pops that spuriously
    /// report "empty".
    pub spurious_recv_empty_pct: u8,
    /// Kill the whole process (`abort`, no unwinding, no destructors —
    /// the honest simulation of SIGKILL/OOM) after the feed loop has
    /// consumed this many trace records. The hook lives in the *driver*,
    /// not the engines: the CLI checks the plan between records, so the
    /// kill lands at a deterministic record index and the
    /// checkpoint/resume suite can cut a run at any point it likes.
    pub kill_after_records: Option<u64>,
}

impl FaultPlan {
    /// The empty plan: no faults, every hook short-circuits.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when no fault is scheduled (the hooks are all inert).
    pub fn is_none(&self) -> bool {
        self.panic_worker.is_none()
            && self.stall_worker.is_none()
            && self.drop_nth_extract_reply.is_none()
            && self.spurious_send_fail_pct == 0
            && self.spurious_recv_empty_pct == 0
            && self.kill_after_records.is_none()
    }

    /// Builder: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: panic worker `worker` after `after_chunks` chunks.
    pub fn with_panic(mut self, worker: usize, after_chunks: u64) -> Self {
        self.panic_worker = Some(WorkerFault { worker, after_chunks });
        self
    }

    /// Builder: stall worker `worker` after `after_chunks` chunks.
    pub fn with_stall(mut self, worker: usize, after_chunks: u64) -> Self {
        self.stall_worker = Some(WorkerFault { worker, after_chunks });
        self
    }

    /// Builder: drop the `n`-th (0-based) migration reply.
    pub fn with_dropped_reply(mut self, n: u64) -> Self {
        self.drop_nth_extract_reply = Some(n);
        self
    }

    /// Builder: seeded spurious transport failures (percentages 0–100).
    pub fn with_spurious(mut self, send_fail_pct: u8, recv_empty_pct: u8) -> Self {
        self.spurious_send_fail_pct = send_fail_pct.min(100);
        self.spurious_recv_empty_pct = recv_empty_pct.min(100);
        self
    }

    /// Builder: kill the process after `n` trace records (see
    /// [`FaultPlan::kill_after_records`]).
    pub fn with_kill(mut self, after_records: u64) -> Self {
        self.kill_after_records = Some(after_records);
        self
    }
}

/// Reads `DEPPROF_CHAOS_SEED` (a comma-separated list of `u64`s) and
/// returns the seeds the chaos suites should run, falling back to
/// `defaults` when the variable is unset. A present-but-unparseable
/// value is *not* silently ignored: it prints a warning on stderr and
/// falls back, so a typo'd seed list shows up in the test log instead
/// of quietly testing nothing the operator asked for.
pub fn chaos_seeds(defaults: &[u64]) -> Vec<u64> {
    match std::env::var("DEPPROF_CHAOS_SEED") {
        Ok(raw) => {
            let parsed: Result<Vec<u64>, _> =
                raw.split(',').map(|s| s.trim().parse::<u64>()).collect();
            match parsed {
                Ok(seeds) if !seeds.is_empty() => seeds,
                _ => {
                    eprintln!(
                        "warning: DEPPROF_CHAOS_SEED={raw:?} is not a comma-separated \
                         list of u64 seeds; falling back to the default seeds"
                    );
                    defaults.to_vec()
                }
            }
        }
        Err(_) => defaults.to_vec(),
    }
}

#[cfg(feature = "fault-inject")]
pub use gated::{FailingReceiver, FailingSender, FailingTransport};

#[cfg(feature = "fault-inject")]
mod gated {
    use super::FaultPlan;
    use crate::traits::{Transport, TransportReceiver, TransportSender};
    use std::cell::Cell;

    /// xorshift64*: tiny, fast, and plenty for fault scheduling.
    fn xorshift(state: &Cell<u64>) -> u64 {
        let mut x = state.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        state.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn stream_seed(seed: u64, wid: usize, salt: u64) -> u64 {
        // SplitMix-style mixing; never zero (xorshift's absorbing state).
        let mut z = seed ^ (wid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) | 1
    }

    /// A [`Transport`] decorator injecting seeded, deterministic
    /// queue-level chaos (spurious full/empty results). Messages are
    /// never lost, duplicated or reordered: any engine that is correct
    /// over this transport under one seed is correct under all of them,
    /// and its dependence output must be bit-identical to the plain
    /// transport's.
    pub struct FailingTransport<X> {
        inner: X,
        plan: FaultPlan,
    }

    impl<X> FailingTransport<X> {
        /// Wraps `inner`, injecting the transport-level faults of `plan`.
        pub fn new(inner: X, plan: FaultPlan) -> Self {
            FailingTransport { inner, plan }
        }
    }

    impl<X: Default> Default for FailingTransport<X> {
        fn default() -> Self {
            FailingTransport::new(X::default(), FaultPlan::none())
        }
    }

    /// Sender half of a [`FailingTransport`] channel.
    pub struct FailingSender<S> {
        inner: S,
        rng: Cell<u64>,
        fail_pct: u8,
    }

    /// Receiver half of a [`FailingTransport`] channel.
    pub struct FailingReceiver<R> {
        inner: R,
        rng: Cell<u64>,
        empty_pct: u8,
    }

    impl<T, X: Transport<T>> Transport<T> for FailingTransport<X> {
        type Sender = FailingSender<X::Sender>;
        type Receiver = FailingReceiver<X::Receiver>;

        fn channel(&self, wid: usize, cap: usize) -> (Self::Sender, Self::Receiver) {
            let (tx, rx) = self.inner.channel(wid, cap);
            (
                FailingSender {
                    inner: tx,
                    rng: Cell::new(stream_seed(self.plan.seed, wid, 0xA5)),
                    fail_pct: self.plan.spurious_send_fail_pct,
                },
                FailingReceiver {
                    inner: rx,
                    rng: Cell::new(stream_seed(self.plan.seed, wid, 0x5A)),
                    empty_pct: self.plan.spurious_recv_empty_pct,
                },
            )
        }

        fn kind() -> &'static str {
            "failing"
        }
    }

    impl<T, S: TransportSender<T>> TransportSender<T> for FailingSender<S> {
        fn push(&self, value: T) -> Result<(), T> {
            if self.fail_pct > 0 && (xorshift(&self.rng) % 100) < self.fail_pct as u64 {
                return Err(value); // spurious "full"; the value is intact
            }
            self.inner.push(value)
        }

        fn memory_usage(&self) -> usize {
            self.inner.memory_usage()
        }

        fn is_closed(&self) -> bool {
            self.inner.is_closed()
        }
    }

    impl<T, R: TransportReceiver<T>> TransportReceiver<T> for FailingReceiver<R> {
        fn pop(&self) -> Option<T> {
            if self.empty_pct > 0 && (xorshift(&self.rng) % 100) < self.empty_pct as u64 {
                return None; // spurious "empty"; nothing is consumed
            }
            self.inner.pop()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::none().with_panic(1, 5).is_none());
        assert!(!FaultPlan::none().with_stall(0, 0).is_none());
        assert!(!FaultPlan::none().with_dropped_reply(0).is_none());
        assert!(!FaultPlan::none().with_spurious(10, 0).is_none());
        assert!(!FaultPlan::none().with_kill(100).is_none());
        // The seed alone schedules nothing.
        assert!(FaultPlan::none().with_seed(42).is_none());
    }

    #[test]
    fn chaos_seeds_falls_back_with_warning_on_garbage() {
        // Env vars are process-global: keep every case in one test so
        // parallel test threads never race on the variable.
        let defaults = [1u64, 7, 42];
        std::env::remove_var("DEPPROF_CHAOS_SEED");
        assert_eq!(chaos_seeds(&defaults), defaults);
        std::env::set_var("DEPPROF_CHAOS_SEED", "5, 99");
        assert_eq!(chaos_seeds(&defaults), vec![5, 99]);
        std::env::set_var("DEPPROF_CHAOS_SEED", "not-a-seed");
        assert_eq!(chaos_seeds(&defaults), defaults, "garbage must fall back, not panic");
        std::env::set_var("DEPPROF_CHAOS_SEED", "");
        assert_eq!(chaos_seeds(&defaults), defaults);
        std::env::remove_var("DEPPROF_CHAOS_SEED");
    }

    #[test]
    fn worker_fault_parses_cli_spelling() {
        assert_eq!(WorkerFault::parse("2@5"), Some(WorkerFault { worker: 2, after_chunks: 5 }));
        assert_eq!(WorkerFault::parse("0@0"), Some(WorkerFault { worker: 0, after_chunks: 0 }));
        assert_eq!(WorkerFault::parse("2"), None);
        assert_eq!(WorkerFault::parse("x@y"), None);
    }

    #[cfg(feature = "fault-inject")]
    mod transport {
        use super::super::*;
        use crate::traits::{Transport, TransportReceiver, TransportSender};
        use crate::{MpmcQueue, Shared, SpscTransport};

        /// Spurious failures must not lose, duplicate or reorder values.
        fn chaos_preserves_fifo<X: Transport<u64> + Default>(seed: u64) {
            let plan = FaultPlan::none().with_seed(seed).with_spurious(30, 30);
            let t = FailingTransport::new(X::default(), plan);
            let (tx, rx) = t.channel(0, 8);
            let mut next_pop = 0u64;
            for i in 0..10_000u64 {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            // Drain a little so real fullness clears.
                            if let Some(got) = rx.pop() {
                                assert_eq!(got, next_pop);
                                next_pop += 1;
                            }
                        }
                    }
                }
            }
            while next_pop < 10_000 {
                if let Some(got) = rx.pop() {
                    assert_eq!(got, next_pop);
                    next_pop += 1;
                }
            }
            assert!(rx.pop().is_none() || rx.pop().is_none(), "queue must end empty");
        }

        #[test]
        fn chaos_is_lossless_over_every_inner_transport() {
            for seed in [1, 42, 0xDEAD_BEEF] {
                chaos_preserves_fifo::<SpscTransport>(seed);
                chaos_preserves_fifo::<Shared<MpmcQueue<u64>>>(seed);
                chaos_preserves_fifo::<Shared<crate::LockQueue<u64>>>(seed);
            }
        }

        #[test]
        fn same_seed_same_schedule() {
            let mk = |seed| {
                let t = FailingTransport::new(
                    SpscTransport,
                    FaultPlan::none().with_seed(seed).with_spurious(50, 0),
                );
                let (tx, _rx) = t.channel(3, 64);
                (0..64u64).map(|i| tx.push(i).is_ok()).collect::<Vec<_>>()
            };
            assert_eq!(mk(7), mk(7), "same seed must fail the same pushes");
            assert_ne!(mk(7), mk(8), "different seeds must differ (w.h.p.)");
        }

        #[test]
        fn closed_detection_passes_through() {
            let t = FailingTransport::new(SpscTransport, FaultPlan::none());
            let (tx, rx) = Transport::<u64>::channel(&t, 0, 4);
            assert!(!tx.is_closed());
            drop(rx);
            assert!(tx.is_closed());
        }
    }
}
