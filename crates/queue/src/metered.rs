//! Metered transport endpoints: the observability taps of the pipeline.
//!
//! Every [`Transport`](crate::Transport) implementation is covered by the
//! same mechanism — a decorator pair ([`MeteredSender`],
//! [`MeteredReceiver`]) wrapping the channel's endpoints and counting
//! into a shared [`ChannelTap`] — so the SPSC fast path, the lock-free
//! MPMC queue and the lock-based comparator report identical metrics
//! without any queue touching a counter itself. The counters are
//! `dp-metrics` primitives: relaxed atomics when the `metrics` feature is
//! on, zero-sized no-ops otherwise, so a disabled build pays nothing for
//! the wrapping.

use crate::traits::{TransportReceiver, TransportSender};
use dp_metrics::{Counter, MaxGauge};
use std::sync::Arc;

/// Per-channel counters shared between a channel's two metered endpoints
/// and the engine that snapshots them.
///
/// Counts are in *messages* (whatever `T` the channel carries — for the
/// profiling engines that is chunks and control messages, not events).
#[derive(Debug, Default)]
pub struct ChannelTap {
    /// Messages successfully pushed.
    pub pushes: Counter,
    /// Push attempts bounced by a full queue (each is one backoff round
    /// on the producer side).
    pub push_fulls: Counter,
    /// Messages successfully popped.
    pub pops: Counter,
    /// Pop attempts that found the queue empty (consumer idle spins).
    pub empty_pops: Counter,
    /// Highest queue depth (messages) observed at any push.
    pub high_water: MaxGauge,
}

impl ChannelTap {
    /// A fresh tap behind an [`Arc`], ready to hand to both endpoints.
    pub fn shared() -> Arc<Self> {
        Arc::new(ChannelTap::default())
    }

    /// Approximate current depth: pushes minus pops. Exact once the
    /// channel is quiescent (the only time the engine reads it).
    pub fn depth(&self) -> u64 {
        self.pushes.get().saturating_sub(self.pops.get())
    }
}

/// A [`TransportSender`] decorator counting pushes, full-queue bounces
/// and the queue-depth high-water mark into a [`ChannelTap`].
///
/// Deliberately generic over the sender (not the transport), so it
/// preserves whatever thread-affinity the wrapped endpoint encodes — a
/// metered SPSC producer is still `!Sync`.
#[derive(Debug)]
pub struct MeteredSender<S> {
    inner: S,
    tap: Arc<ChannelTap>,
}

impl<S> MeteredSender<S> {
    /// Wraps `inner`, counting into `tap`.
    pub fn new(inner: S, tap: Arc<ChannelTap>) -> Self {
        MeteredSender { inner, tap }
    }

    /// The tap this endpoint counts into.
    pub fn tap(&self) -> &ChannelTap {
        &self.tap
    }
}

impl<T, S: TransportSender<T>> TransportSender<T> for MeteredSender<S> {
    fn push(&self, value: T) -> Result<(), T> {
        match self.inner.push(value) {
            Ok(()) => {
                // `inc` returns the new push total; depth at this instant
                // is that minus the pops so far. Racing pops can only
                // make the recorded depth an underestimate of the true
                // instantaneous peak, never an overestimate.
                let n = self.tap.pushes.inc();
                self.tap.high_water.record(n.saturating_sub(self.tap.pops.get()));
                Ok(())
            }
            Err(v) => {
                self.tap.push_fulls.inc();
                Err(v)
            }
        }
    }

    fn memory_usage(&self) -> usize {
        self.inner.memory_usage()
    }

    fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }
}

/// A [`TransportReceiver`] decorator counting pops and empty polls into
/// a [`ChannelTap`].
#[derive(Debug)]
pub struct MeteredReceiver<R> {
    inner: R,
    tap: Arc<ChannelTap>,
}

impl<R> MeteredReceiver<R> {
    /// Wraps `inner`, counting into `tap`.
    pub fn new(inner: R, tap: Arc<ChannelTap>) -> Self {
        MeteredReceiver { inner, tap }
    }

    /// The tap this endpoint counts into.
    pub fn tap(&self) -> &ChannelTap {
        &self.tap
    }
}

impl<T, R: TransportReceiver<T>> TransportReceiver<T> for MeteredReceiver<R> {
    fn pop(&self) -> Option<T> {
        let got = self.inner.pop();
        if got.is_some() {
            self.tap.pops.inc();
        } else {
            self.tap.empty_pops.inc();
        }
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{SpscTransport, Transport};
    use crate::{LockQueue, MpmcQueue, Shared};

    fn exercise<X: Transport<u32> + Default>() {
        let tap = ChannelTap::shared();
        let (tx, rx) = X::default().channel(0, 2);
        let tx = MeteredSender::new(tx, tap.clone());
        let rx = MeteredReceiver::new(rx, tap.clone());

        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert!(tx.push(3).is_err(), "capacity-2 channel must bounce the third push");
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
        assert!(tx.memory_usage() > 0);
        assert!(!tx.is_closed());

        if dp_metrics::ENABLED {
            assert_eq!(tap.pushes.get(), 2, "{}", X::kind());
            assert_eq!(tap.push_fulls.get(), 1);
            assert_eq!(tap.pops.get(), 2);
            assert_eq!(tap.empty_pops.get(), 1);
            assert_eq!(tap.high_water.get(), 2);
            assert_eq!(tap.depth(), 0);
        } else {
            assert_eq!(tap.pushes.get(), 0);
            assert_eq!(tap.high_water.get(), 0);
        }
    }

    #[test]
    fn every_transport_counts_identically() {
        exercise::<SpscTransport>();
        exercise::<Shared<MpmcQueue<u32>>>();
        exercise::<Shared<LockQueue<u32>>>();
    }

    #[test]
    fn closure_passes_through() {
        let tap = ChannelTap::shared();
        let (tx, rx) = Transport::<u32>::channel(&SpscTransport, 0, 4);
        let tx = MeteredSender::new(tx, tap.clone());
        let rx = MeteredReceiver::new(rx, tap);
        let h = std::thread::spawn(move || drop(rx));
        h.join().unwrap();
        assert!(tx.is_closed(), "metering must not hide receiver death");
    }
}
