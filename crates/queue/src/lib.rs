//! Queues and chunk management for the parallel profiling pipeline
//! (Section IV of the paper).
//!
//! "To buffer incoming memory accesses before they are consumed, we use a
//! separate queue for each worker thread ... Since the major
//! synchronization overhead comes from locking and unlocking the queues, we
//! made the queues lock-free to lower the overhead."
//!
//! This crate provides:
//!
//! - [`MpmcQueue`] — a bounded lock-free queue (Vyukov's array-based
//!   algorithm). Sequential targets have a single producer (the main
//!   thread); multi-threaded targets have one producer per target thread —
//!   the paper notes the parallel-target mode needs "a different
//!   implementation of lock-free queues", which is why the queue is MPMC.
//! - [`SpscRing`](spsc) — a single-producer single-consumer ring, the
//!   fastest possible path for sequential targets; benchmarked against
//!   [`MpmcQueue`] in `dp-bench`.
//! - [`LockQueue`] — the mutex-protected comparator used for the
//!   lock-based-vs-lock-free experiment (Figure 5: the lock-free design is
//!   1.6×/1.3× faster on NAS/Starbench).
//! - [`Chunk`] / [`ChunkPool`] — fixed-capacity event chunks with lock-free
//!   recycling ("Empty chunks are recycled and can be reused").
//! - [`WorkerQueue`] — the trait the profiling engines are generic over,
//!   so the lock-free and lock-based pipelines share all other code.
//! - [`Backoff`] — bounded exponential spin/yield backoff for the
//!   producer-full and consumer-empty paths; [`DeadlineBackoff`] bounds
//!   the wait itself, turning an unbounded hang on a stalled worker into
//!   an accountable decision.
//! - [`FaultPlan`] / [`fault`] — deterministic fault injection (worker
//!   panics, stalls, dropped migration replies, seeded transport chaos)
//!   so every recovery path is exercised by reproducible tests.
//! - [`MeteredSender`] / [`MeteredReceiver`] / [`ChannelTap`] — the
//!   observability taps: endpoint decorators counting pushes, pops,
//!   full-queue bounces, empty polls and the depth high-water mark into
//!   `dp-metrics` counters (zero-sized no-ops unless the `metrics`
//!   feature is on), uniformly across all three transports.

#![warn(missing_docs)]

pub mod backoff;
pub mod chunk;
pub mod fault;
pub mod lockq;
pub mod metered;
pub mod mpmc;
pub mod spsc;
pub mod traits;

pub use backoff::{Backoff, DeadlineBackoff};
pub use chunk::{Chunk, ChunkPool};
#[cfg(feature = "fault-inject")]
pub use fault::FailingTransport;
pub use fault::{chaos_seeds, FaultPlan, WorkerFault};
pub use lockq::LockQueue;
pub use metered::{ChannelTap, MeteredReceiver, MeteredSender};
pub use mpmc::MpmcQueue;
pub use spsc::{spsc_ring, SpscConsumer, SpscProducer};
pub use traits::{
    Shared, SpscTransport, Transport, TransportReceiver, TransportSender, WorkerQueue,
};

/// Pads a value to a cache line to prevent false sharing between the
/// producer and consumer indices of the queues.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
