//! Event chunks and lock-free chunk recycling (Section IV).
//!
//! "The main thread ... collects memory accesses in chunks, whose size can
//! be configured in the interest of scalability. ... Once a chunk is full,
//! the main thread pushes it into the queue of the thread responsible for
//! the accesses recorded in it. ... Empty chunks are recycled and can be
//! reused."
//!
//! Chunking amortizes one queue operation over `capacity` events; the
//! chunk-size sweep is ablation E13 in DESIGN.md.

use crate::mpmc::MpmcQueue;
use dp_types::TraceEvent;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A fixed-capacity buffer of trace events.
#[derive(Debug)]
pub struct Chunk {
    events: Vec<TraceEvent>,
    cap: usize,
    rerouted: usize,
}

impl Chunk {
    /// Creates an empty chunk that holds up to `cap` events.
    pub fn new(cap: usize) -> Self {
        Chunk { events: Vec::with_capacity(cap), cap, rerouted: 0 }
    }

    /// Appends an event. Callers check [`Chunk::is_full`] first; pushing
    /// past capacity is a logic error (debug-asserted) but only costs a
    /// reallocation in release builds.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        debug_assert!(self.events.len() < self.cap, "chunk overfilled");
        self.events.push(ev);
    }

    /// True once `capacity` events are buffered.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.events.len() >= self.cap
    }

    /// Buffered events.
    #[inline]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of buffered events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Marks the most recently pushed event as *rerouted*: a copy
    /// diverted to this chunk's worker because the event's owner is dead.
    /// The observability ledger counts rerouted copies at routing time,
    /// so downstream enqueue/consume/drop taps use
    /// [`Chunk::rerouted`] to exclude them and keep the conservation
    /// law's columns disjoint.
    #[inline]
    pub fn mark_rerouted(&mut self) {
        self.rerouted += 1;
    }

    /// Number of events in this chunk marked rerouted.
    #[inline]
    pub fn rerouted(&self) -> usize {
        self.rerouted
    }

    /// Empties the chunk for reuse, keeping its allocation.
    pub fn reset(&mut self) {
        self.events.clear();
        self.rerouted = 0;
    }
}

/// A lock-free recycling pool of [`Chunk`]s shared between the producer(s)
/// and the workers.
///
/// `acquire` prefers a recycled chunk and falls back to allocation; the
/// pool is bounded, so a burst allocates and the excess is dropped on
/// `release` — bounding both allocation traffic and idle memory. The
/// allocation counter feeds the memory accounting of Figures 7/8.
pub struct ChunkPool {
    free: MpmcQueue<Chunk>,
    chunk_cap: usize,
    allocated: AtomicUsize,
    high_water: AtomicUsize,
}

impl ChunkPool {
    /// Creates a pool recycling up to `pool_cap` chunks of `chunk_cap`
    /// events each.
    pub fn new(pool_cap: usize, chunk_cap: usize) -> Arc<Self> {
        Arc::new(ChunkPool {
            free: MpmcQueue::new(pool_cap),
            chunk_cap,
            allocated: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
        })
    }

    /// Takes a recycled chunk or allocates a fresh one.
    pub fn acquire(&self) -> Chunk {
        if let Some(c) = self.free.pop() {
            return c;
        }
        let n = self.allocated.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(n, Ordering::Relaxed);
        Chunk::new(self.chunk_cap)
    }

    /// Returns a consumed chunk to the pool (dropped if the pool is full).
    pub fn release(&self, mut chunk: Chunk) {
        chunk.reset();
        if self.free.push(chunk).is_err() {
            self.allocated.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Event capacity of chunks from this pool.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_cap
    }

    /// Peak number of simultaneously allocated chunks.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Bytes attributable to the pool at its high-water mark.
    pub fn memory_usage(&self) -> usize {
        self.high_water() * self.chunk_cap * std::mem::size_of::<TraceEvent>()
            + self.free.memory_usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::{loc::loc, MemAccess};

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::Access(MemAccess::read(i, i, loc(1, 1), 0, 0))
    }

    #[test]
    fn chunk_fill_and_reset() {
        let mut c = Chunk::new(4);
        assert!(c.is_empty());
        for i in 0..4 {
            assert!(!c.is_full());
            c.push(ev(i));
        }
        assert!(c.is_full());
        assert_eq!(c.len(), 4);
        c.mark_rerouted();
        assert_eq!(c.rerouted(), 1);
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 4);
        assert_eq!(c.rerouted(), 0, "reset clears the rerouted marks");
    }

    #[test]
    fn pool_recycles() {
        let pool = ChunkPool::new(8, 16);
        let mut a = pool.acquire();
        a.push(ev(1));
        pool.release(a);
        let b = pool.acquire();
        assert!(b.is_empty(), "recycled chunk must be reset");
        assert_eq!(pool.high_water(), 1, "second acquire reused the first chunk");
    }

    #[test]
    fn pool_bounds_retention() {
        let pool = ChunkPool::new(2, 4);
        let chunks: Vec<_> = (0..5).map(|_| pool.acquire()).collect();
        assert_eq!(pool.high_water(), 5);
        for c in chunks {
            pool.release(c);
        }
        // Only pool_cap (rounded to 2) chunks are retained; the rest are
        // dropped and the live count reflects that.
        assert!(pool.allocated.load(Ordering::Relaxed) <= 2);
    }

    #[test]
    fn pool_concurrent_use() {
        let pool = ChunkPool::new(32, 8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        let mut c = pool.acquire();
                        c.push(ev(i));
                        pool.release(c);
                    }
                });
            }
        });
        assert!(pool.high_water() <= 8, "4 threads × ≤2 in flight");
    }
}
