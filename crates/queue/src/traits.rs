//! The queue and transport abstractions the profiling engines are
//! generic over.
//!
//! Two layers:
//!
//! - [`WorkerQueue`] — a *shared* bounded queue: one object, safe to push
//!   and pop from any thread. The lock-free pipeline instantiates the
//!   engine with [`MpmcQueue`]; the lock-based comparator (Figure 5)
//!   instantiates the *same* engine with [`LockQueue`]. Nothing else
//!   differs between the two builds, so the measured gap is attributable
//!   to the queues — the claim of Section IV.
//! - [`Transport`] — a factory for *split* per-worker channels, each a
//!   ([`TransportSender`], [`TransportReceiver`]) pair. This is what the
//!   engine is actually generic over. Shared queues lift into it via
//!   [`Shared`] (sender = receiver = `Arc<Q>`); the single-producer
//!   fast path for sequential targets is [`SpscTransport`], whose
//!   endpoint handles are the `!Sync` SPSC ring halves — the type system
//!   itself enforces that only one thread feeds each worker, which is
//!   exactly the situation of Figure 2 (one instrumented thread, W
//!   workers).

use crate::spsc::{spsc_ring, SpscConsumer, SpscProducer};
use crate::{LockQueue, MpmcQueue};
use std::marker::PhantomData;
use std::sync::Arc;

/// A bounded multi-producer queue usable as a worker's inbox.
pub trait WorkerQueue<T>: Send + Sync {
    /// Creates a queue with room for at least `cap` elements.
    fn with_capacity(cap: usize) -> Self;
    /// Attempts to enqueue; gives the value back when full (the caller
    /// backs off, applying backpressure to the instrumented program).
    fn push(&self, value: T) -> Result<(), T>;
    /// Attempts to dequeue; `None` when currently empty.
    fn pop(&self) -> Option<T>;
    /// Bytes attributable to the queue (memory accounting, Figures 7/8).
    fn memory_usage(&self) -> usize;
    /// Short human-readable name for reports ("lock-free", "lock-based").
    fn kind() -> &'static str;
}

impl<T: Send> WorkerQueue<T> for MpmcQueue<T> {
    fn with_capacity(cap: usize) -> Self {
        MpmcQueue::new(cap)
    }

    fn push(&self, value: T) -> Result<(), T> {
        MpmcQueue::push(self, value)
    }

    fn pop(&self) -> Option<T> {
        MpmcQueue::pop(self)
    }

    fn memory_usage(&self) -> usize {
        MpmcQueue::memory_usage(self)
    }

    fn kind() -> &'static str {
        "lock-free"
    }
}

impl<T: Send> WorkerQueue<T> for LockQueue<T> {
    fn with_capacity(cap: usize) -> Self {
        LockQueue::new(cap)
    }

    fn push(&self, value: T) -> Result<(), T> {
        LockQueue::push(self, value)
    }

    fn pop(&self) -> Option<T> {
        LockQueue::pop(self)
    }

    fn memory_usage(&self) -> usize {
        LockQueue::memory_usage(self)
    }

    fn kind() -> &'static str {
        "lock-based"
    }
}

/// The producing endpoint of a per-worker channel, held by the router.
///
/// `Send` but deliberately **not** required to be `Sync`: a sender is
/// owned by exactly one routing thread. Transports whose sender *is*
/// shareable (the [`Shared`] adapter) simply don't exercise the freedom.
pub trait TransportSender<T>: Send {
    /// Attempts to enqueue; gives the value back when the channel is full
    /// (the caller backs off, applying backpressure to the instrumented
    /// program).
    fn push(&self, value: T) -> Result<(), T>;
    /// Bytes attributable to the channel (memory accounting, Figures
    /// 7/8). Counted on the sender side because the engine keeps senders
    /// alive until after the workers are joined.
    fn memory_usage(&self) -> usize;
    /// True once the receiving endpoint has been dropped — i.e. the
    /// worker thread holding it has exited, cleanly or by panic. A full
    /// queue whose sender is closed will never drain; producers check
    /// this in their backoff loops so a dead worker fails pushes fast
    /// instead of hanging the instrumented program forever.
    fn is_closed(&self) -> bool;
}

/// The consuming endpoint of a per-worker channel, moved into the worker.
pub trait TransportReceiver<T>: Send {
    /// Attempts to dequeue; `None` when currently empty.
    fn pop(&self) -> Option<T>;
}

/// A factory for per-worker channels; the profiling engine is generic
/// over this, so the SPSC, MPMC and lock-based builds share every other
/// line of code.
///
/// Channel creation is an *instance* method so a transport can carry
/// per-run state — the fault-injection wrapper
/// ([`FailingTransport`](crate::fault::FailingTransport)) carries a
/// [`FaultPlan`](crate::fault::FaultPlan) and derives each endpoint's
/// seeded behaviour from the worker id it is built for. The plain
/// transports are stateless unit values ([`Default`]).
pub trait Transport<T>: 'static {
    /// Endpoint kept by the router (the instrumented program's thread).
    type Sender: TransportSender<T> + 'static;
    /// Endpoint moved into the worker thread.
    type Receiver: TransportReceiver<T> + 'static;

    /// Creates the channel feeding worker `wid`, with room for at least
    /// `cap` elements.
    fn channel(&self, wid: usize, cap: usize) -> (Self::Sender, Self::Receiver);

    /// Short human-readable name for reports ("spsc", "lock-free",
    /// "lock-based").
    fn kind() -> &'static str;
}

/// Lifts any shared [`WorkerQueue`] into a [`Transport`] by handing both
/// endpoints the same `Arc<Q>`.
pub struct Shared<Q>(PhantomData<Q>);

impl<Q> Default for Shared<Q> {
    fn default() -> Self {
        Shared(PhantomData)
    }
}

impl<T: Send, Q: WorkerQueue<T> + 'static> Transport<T> for Shared<Q> {
    type Sender = Arc<Q>;
    type Receiver = Arc<Q>;

    fn channel(&self, _wid: usize, cap: usize) -> (Arc<Q>, Arc<Q>) {
        let q = Arc::new(Q::with_capacity(cap));
        (q.clone(), q)
    }

    fn kind() -> &'static str {
        Q::kind()
    }
}

impl<T: Send, Q: WorkerQueue<T>> TransportSender<T> for Arc<Q> {
    fn push(&self, value: T) -> Result<(), T> {
        WorkerQueue::push(&**self, value)
    }

    fn memory_usage(&self) -> usize {
        WorkerQueue::memory_usage(&**self)
    }

    fn is_closed(&self) -> bool {
        // Exactly two clones exist per channel (sender, receiver); when
        // the worker thread ends its clone drops and only ours remains.
        Arc::strong_count(self) <= 1
    }
}

impl<T: Send, Q: WorkerQueue<T>> TransportReceiver<T> for Arc<Q> {
    fn pop(&self) -> Option<T> {
        WorkerQueue::pop(&**self)
    }
}

/// The single-producer single-consumer fast path (Section IV applied to
/// Figure 2's sequential-target shape: exactly one producer exists, so
/// the per-worker channel can drop all multi-producer synchronization —
/// one relaxed load plus one release store per operation).
///
/// Only sound when a single thread feeds all workers; the endpoints are
/// the `!Sync`, `!Clone` SPSC ring halves, so misuse is a compile error,
/// not a data race.
#[derive(Default)]
pub struct SpscTransport;

impl<T: Send + 'static> Transport<T> for SpscTransport {
    type Sender = SpscProducer<T>;
    type Receiver = SpscConsumer<T>;

    fn channel(&self, _wid: usize, cap: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
        spsc_ring(cap)
    }

    fn kind() -> &'static str {
        "spsc"
    }
}

impl<T: Send> TransportSender<T> for SpscProducer<T> {
    fn push(&self, value: T) -> Result<(), T> {
        SpscProducer::push(self, value)
    }

    fn memory_usage(&self) -> usize {
        SpscProducer::memory_usage(self)
    }

    fn is_closed(&self) -> bool {
        SpscProducer::is_closed(self)
    }
}

impl<T: Send> TransportReceiver<T> for SpscConsumer<T> {
    fn pop(&self) -> Option<T> {
        SpscConsumer::pop(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<Q: WorkerQueue<u32>>() {
        let q = Q::with_capacity(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.memory_usage() > 0);
        assert!(!Q::kind().is_empty());
    }

    #[test]
    fn both_impls_conform() {
        exercise::<MpmcQueue<u32>>();
        exercise::<LockQueue<u32>>();
    }

    fn exercise_transport<X: Transport<u32> + Default>() {
        let (tx, rx) = X::default().channel(0, 4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.pop(), Some(1));
        assert!(tx.memory_usage() > 0);
        assert!(!X::kind().is_empty());
        assert!(!tx.is_closed(), "receiver is still alive");
        // The receiver works from another thread (the worker).
        let h = std::thread::spawn(move || rx.pop());
        assert_eq!(h.join().unwrap(), Some(2));
        // The worker thread exited and dropped its endpoint: the sender
        // must observe the closure (this is how dead workers are found).
        assert!(tx.is_closed(), "{}: closed channel not detected", X::kind());
    }

    #[test]
    fn all_transports_conform() {
        exercise_transport::<Shared<MpmcQueue<u32>>>();
        exercise_transport::<Shared<LockQueue<u32>>>();
        exercise_transport::<SpscTransport>();
    }
}
