//! The queue abstraction the profiling engines are generic over.
//!
//! The lock-free pipeline instantiates the engine with [`MpmcQueue`]; the
//! lock-based comparator (Figure 5) instantiates the *same* engine with
//! [`LockQueue`]. Nothing else differs between the two builds, so the
//! measured gap is attributable to the queues — the claim of Section IV.

use crate::{LockQueue, MpmcQueue};

/// A bounded multi-producer queue usable as a worker's inbox.
pub trait WorkerQueue<T>: Send + Sync {
    /// Creates a queue with room for at least `cap` elements.
    fn with_capacity(cap: usize) -> Self;
    /// Attempts to enqueue; gives the value back when full (the caller
    /// backs off, applying backpressure to the instrumented program).
    fn push(&self, value: T) -> Result<(), T>;
    /// Attempts to dequeue; `None` when currently empty.
    fn pop(&self) -> Option<T>;
    /// Bytes attributable to the queue (memory accounting, Figures 7/8).
    fn memory_usage(&self) -> usize;
    /// Short human-readable name for reports ("lock-free", "lock-based").
    fn kind() -> &'static str;
}

impl<T: Send> WorkerQueue<T> for MpmcQueue<T> {
    fn with_capacity(cap: usize) -> Self {
        MpmcQueue::new(cap)
    }

    fn push(&self, value: T) -> Result<(), T> {
        MpmcQueue::push(self, value)
    }

    fn pop(&self) -> Option<T> {
        MpmcQueue::pop(self)
    }

    fn memory_usage(&self) -> usize {
        MpmcQueue::memory_usage(self)
    }

    fn kind() -> &'static str {
        "lock-free"
    }
}

impl<T: Send> WorkerQueue<T> for LockQueue<T> {
    fn with_capacity(cap: usize) -> Self {
        LockQueue::new(cap)
    }

    fn push(&self, value: T) -> Result<(), T> {
        LockQueue::push(self, value)
    }

    fn pop(&self) -> Option<T> {
        LockQueue::pop(self)
    }

    fn memory_usage(&self) -> usize {
        LockQueue::memory_usage(self)
    }

    fn kind() -> &'static str {
        "lock-based"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<Q: WorkerQueue<u32>>() {
        let q = Q::with_capacity(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.memory_usage() > 0);
        assert!(!Q::kind().is_empty());
    }

    #[test]
    fn both_impls_conform() {
        exercise::<MpmcQueue<u32>>();
        exercise::<LockQueue<u32>>();
    }
}
