//! Bounded lock-free multi-producer multi-consumer queue.
//!
//! This is Dmitry Vyukov's classic array-based MPMC algorithm: each cell
//! carries a sequence number that encodes, relative to the enqueue/dequeue
//! tickets, whether the cell is free, full, or being operated on. The
//! algorithm is lock-free (a stalled thread can delay at most the cell it
//! claimed), ABA-safe without memory reclamation (cells are never freed),
//! and allocation-free after construction — the properties Section IV needs
//! from the per-worker access queues.

use crate::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Cell<T> {
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free MPMC queue.
pub struct MpmcQueue<T> {
    buf: Box<[Cell<T>]>,
    mask: usize,
    enq: CachePadded<AtomicUsize>,
    deq: CachePadded<AtomicUsize>,
}

unsafe impl<T: Send> Send for MpmcQueue<T> {}
unsafe impl<T: Send> Sync for MpmcQueue<T> {}

impl<T> MpmcQueue<T> {
    /// Creates a queue with capacity `cap` (rounded up to a power of two,
    /// minimum 2).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        let buf: Box<[Cell<T>]> = (0..cap)
            .map(|i| Cell { seq: AtomicUsize::new(i), val: UnsafeCell::new(MaybeUninit::uninit()) })
            .collect();
        MpmcQueue {
            buf,
            mask: cap - 1,
            enq: CachePadded(AtomicUsize::new(0)),
            deq: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Capacity (always a power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Attempts to enqueue; returns the value back if the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enq.load(Ordering::Relaxed);
        loop {
            let cell = &self.buf[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Cell is free for this ticket; try to claim it.
                match self.enq.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { (*cell.val.get()).write(value) };
                        cell.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // The cell still holds an element a full lap behind: full.
                return Err(value);
            } else {
                // Another producer claimed this ticket; refresh.
                pos = self.enq.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue; `None` if empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.deq.load(Ordering::Relaxed);
        loop {
            let cell = &self.buf[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self.deq.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*cell.val.get()).assume_init_read() };
                        cell.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.deq.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate number of queued elements (racy; diagnostics only).
    pub fn len(&self) -> usize {
        let e = self.enq.load(Ordering::Relaxed);
        let d = self.deq.load(Ordering::Relaxed);
        e.saturating_sub(d)
    }

    /// Approximate emptiness (racy; diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes attributable to this queue.
    pub fn memory_usage(&self) -> usize {
        self.capacity() * std::mem::size_of::<Cell<T>>() + std::mem::size_of::<Self>()
    }
}

impl<T> Drop for MpmcQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = MpmcQueue::new(8);
        for i in 0..8 {
            q.push(i).unwrap();
        }
        assert!(q.push(99).is_err(), "must report full");
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_rounds_up() {
        let q: MpmcQueue<u8> = MpmcQueue::new(5);
        assert_eq!(q.capacity(), 8);
        let q: MpmcQueue<u8> = MpmcQueue::new(0);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn wraparound_many_laps() {
        let q = MpmcQueue::new(4);
        for lap in 0..1000u64 {
            for i in 0..4 {
                q.push(lap * 4 + i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(q.pop(), Some(lap * 4 + i));
            }
        }
    }

    #[test]
    fn drop_releases_remaining() {
        // Values left in the queue must be dropped exactly once.
        struct Counted(Arc<AtomicU64>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        {
            let q = MpmcQueue::new(8);
            for _ in 0..5 {
                assert!(q.push(Counted(drops.clone())).is_ok());
            }
            let popped = q.pop().unwrap();
            drop(popped);
            assert_eq!(drops.load(Ordering::Relaxed), 1);
        }
        assert_eq!(drops.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn stress_mpmc_sum_preserved() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER: u64 = 3_000;
        let q = Arc::new(MpmcQueue::new(256));
        let produced: u64 = (0..PRODUCERS as u64 * PER).sum();
        let consumed = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        let mut v = p as u64 * PER + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = q.clone();
                let consumed = consumed.clone();
                let count = count.clone();
                s.spawn(move || loop {
                    if let Some(v) = q.pop() {
                        consumed.fetch_add(v, Ordering::Relaxed);
                        if count.fetch_add(1, Ordering::Relaxed) + 1 == PRODUCERS as u64 * PER {
                            return;
                        }
                    } else if count.load(Ordering::Relaxed) == PRODUCERS as u64 * PER {
                        return;
                    } else {
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(consumed.load(Ordering::Relaxed), produced);
    }

    #[test]
    fn spsc_order_preserved_across_threads() {
        let q = Arc::new(MpmcQueue::new(64));
        let qc = q.clone();
        let h = std::thread::spawn(move || {
            let mut expect = 0u64;
            while expect < 20_000 {
                if let Some(v) = qc.pop() {
                    assert_eq!(v, expect, "FIFO violated");
                    expect += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        for i in 0..20_000u64 {
            let mut v = i;
            while let Err(back) = q.push(v) {
                v = back;
                std::thread::yield_now();
            }
        }
        h.join().unwrap();
    }
}
