//! Pipeline observability for the profiler (PR 3).
//!
//! The paper's parallel pipeline (Section IV, Figure 2) is steered by
//! runtime statistics — hot-address counts drive the periodic
//! redistribution of Section IV-A, and Formula 2 trades signature memory
//! for measurable accuracy — yet none of that state is visible while a
//! profile runs. This crate is the shared vocabulary for making it
//! visible:
//!
//! - [`Counter`], [`MaxGauge`], [`Stopwatch`] — the instrumentation
//!   primitives. With the `enabled` feature they are relaxed atomics and
//!   monotonic clocks; without it they are zero-sized no-ops, so the
//!   instrumented hot paths cost literally nothing in a disabled build.
//! - [`MetricsSnapshot`] — the frozen end-of-run picture: the
//!   event-conservation ledger ([`Conservation`]), chunk/queue stats,
//!   signature gauges, hot-address top-K, per-worker rows and per-phase
//!   timings, with stable-order JSON and text export.
//! - [`PipelineObserver`] / [`ObserverHandle`] — a subscription hook so
//!   benches and tests can watch redistribution, worker failures and the
//!   final snapshot without parsing CLI output.
//!
//! The core invariant the engines maintain (and the test suite proves) is
//! the conservation law: every event pushed into the pipeline is accounted
//! for exactly once,
//!
//! ```text
//! pushed == consumed + dropped + rerouted + in_flight_at_shutdown
//! ```

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Arc;

/// True when the crate was built with the `enabled` feature — i.e. when
/// the primitives below actually count. [`MetricsSnapshot::enabled`]
/// mirrors this so consumers of an exported snapshot can tell zeros from
/// "not measured".
pub const ENABLED: bool = cfg!(feature = "enabled");

// ---------------------------------------------------------------------------
// Instrumentation primitives (cfg-switched; everything downstream of them
// is plain data, so no other crate needs feature-conditional code).
// ---------------------------------------------------------------------------

/// A monotonically increasing counter, incremented from any thread.
///
/// `Relaxed` atomics when the `enabled` feature is on; a zero-sized no-op
/// otherwise. No ordering is implied between counters — snapshots are
/// taken after the counted threads are joined.
#[cfg(feature = "enabled")]
#[derive(Debug, Default)]
pub struct Counter(std::sync::atomic::AtomicU64);

#[cfg(feature = "enabled")]
impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(std::sync::atomic::AtomicU64::new(0))
    }

    /// Adds one; returns the new value (0 in a disabled build, where
    /// nothing is counted).
    #[inline]
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Current value (0 in a disabled build).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A monotonically increasing counter, incremented from any thread.
///
/// `Relaxed` atomics when the `enabled` feature is on; a zero-sized no-op
/// otherwise. No ordering is implied between counters — snapshots are
/// taken after the counted threads are joined.
#[cfg(not(feature = "enabled"))]
#[derive(Debug, Default, Clone, Copy)]
pub struct Counter;

#[cfg(not(feature = "enabled"))]
impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter
    }

    /// Adds one; returns the new value (0 in a disabled build, where
    /// nothing is counted).
    #[inline(always)]
    pub fn inc(&self) -> u64 {
        0
    }

    /// Adds `n`.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Current value (0 in a disabled build).
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// A gauge that remembers the maximum value ever recorded (queue
/// high-water marks). Same zero-cost story as [`Counter`].
#[cfg(feature = "enabled")]
#[derive(Debug, Default)]
pub struct MaxGauge(std::sync::atomic::AtomicU64);

#[cfg(feature = "enabled")]
impl MaxGauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        MaxGauge(std::sync::atomic::AtomicU64::new(0))
    }

    /// Raises the maximum to `v` if `v` exceeds it.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.fetch_max(v, std::sync::atomic::Ordering::Relaxed);
    }

    /// Largest value recorded so far (0 in a disabled build).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A gauge that remembers the maximum value ever recorded (queue
/// high-water marks). Same zero-cost story as [`Counter`].
#[cfg(not(feature = "enabled"))]
#[derive(Debug, Default, Clone, Copy)]
pub struct MaxGauge;

#[cfg(not(feature = "enabled"))]
impl MaxGauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        MaxGauge
    }

    /// Raises the maximum to `v` if `v` exceeds it.
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// Largest value recorded so far (0 in a disabled build).
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// A wall-clock stopwatch for phase timings. Reads the monotonic clock
/// when the `enabled` feature is on; a zero-sized no-op otherwise.
#[cfg(feature = "enabled")]
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(std::time::Instant);

#[cfg(feature = "enabled")]
impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch(std::time::Instant::now())
    }

    /// Nanoseconds since [`Stopwatch::start`] (0 in a disabled build).
    pub fn elapsed_nanos(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// A wall-clock stopwatch for phase timings. Reads the monotonic clock
/// when the `enabled` feature is on; a zero-sized no-op otherwise.
#[cfg(not(feature = "enabled"))]
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch;

#[cfg(not(feature = "enabled"))]
impl Stopwatch {
    /// Starts timing now.
    #[inline(always)]
    pub fn start() -> Self {
        Stopwatch
    }

    /// Nanoseconds since [`Stopwatch::start`] (0 in a disabled build).
    #[inline(always)]
    pub fn elapsed_nanos(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------------
// Snapshot data model (always-present plain data; zeros when disabled).
// ---------------------------------------------------------------------------

/// The event-conservation ledger. Every event the router pushes into the
/// pipeline ends in exactly one of four terminal states, so
///
/// ```text
/// pushed == consumed + dropped + rerouted + in_flight_at_shutdown
/// ```
///
/// `rerouted` counts event copies diverted away from a dead worker
/// (supervision, DESIGN.md failure class 1/2); they are marked in their
/// chunk and *excluded* from the downstream enqueue/consume/drop taps, so
/// each column of the ledger is disjoint. [`Conservation::holds`] checks
/// the law.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Conservation {
    /// Events handed to the pipeline (every copy: broadcasts and replayed
    /// migration buffers count once per destination).
    pub pushed: u64,
    /// Events popped and analyzed by worker threads.
    pub consumed: u64,
    /// Events dropped by the `drop` overflow policy or lost with a failed
    /// worker's undrained queue contents at shutdown. Matches
    /// `ProfileStats::dropped_events`.
    pub dropped: u64,
    /// Event copies diverted to a substitute worker because their owner
    /// was already dead when they were routed.
    pub rerouted: u64,
    /// Events still sitting in the queues of failed or abandoned workers
    /// when the run ended (a healthy shutdown drains everything, so this
    /// is 0 unless the profile is degraded).
    pub in_flight_at_shutdown: u64,
}

impl Conservation {
    /// True when the conservation law balances.
    pub fn holds(&self) -> bool {
        self.pushed == self.consumed + self.dropped + self.rerouted + self.in_flight_at_shutdown
    }
}

/// Chunk-level traffic through the per-worker queues.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChunkStats {
    /// Event chunks successfully enqueued by the router.
    pub pushed: u64,
    /// Event chunks popped and drained by workers.
    pub consumed: u64,
    /// Highest queue depth (messages) observed on any single worker queue.
    pub queue_highwater: u64,
    /// Push attempts bounced by a full queue (each is one backoff round).
    pub push_retries: u64,
    /// Worker pops that found an empty queue (idle spinning).
    pub empty_pops: u64,
}

/// Signature occupancy and accuracy gauges (Section III-B), summed over
/// the read and write stores of every worker.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SigGauges {
    /// Occupied slots across all signatures.
    pub occupied_slots: u64,
    /// Total slots across all signatures (0 for exact stores, whose
    /// capacity is unbounded).
    pub total_slots: u64,
    /// Insertions that displaced existing state: hash-collision
    /// overwrites in a signature, re-inserts of an existing key in exact
    /// stores.
    pub evictions: u64,
    /// Formula 2 estimate of the false-positive rate implied by the
    /// current occupancy, in percent (0 for exact stores).
    pub est_fpr_pct: f64,
}

/// Durability counters: checkpoints written during the run and, for
/// resumed runs, the trace position the run picked up from. Filled in by
/// the driver (the CLI's checkpoint loop), not the engines — the engines
/// only produce checkpoint blobs on demand and never touch the disk
/// themselves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointMetrics {
    /// Checkpoints successfully written by this run.
    pub generations: u64,
    /// Size in bytes of the most recently written checkpoint file.
    pub last_bytes: u64,
    /// Total nanoseconds spent serializing and atomically writing
    /// checkpoints (quiesce time included).
    pub write_nanos: u64,
    /// Trace position (records already folded in) this run resumed from;
    /// 0 for a run started from the beginning.
    pub resumed_from: u64,
}

/// Service-layer resilience counters: what the DPSV session survived.
/// Zero everywhere for offline runs; filled in by the server's
/// `SessionEngine` when a profile arrived over the network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Times a client re-`Hello`ed into this session (resume after a
    /// disconnect or a hibernation).
    pub reconnects: u64,
    /// Times the session was hibernated to the checkpoint store after
    /// sitting idle (engine evicted, slot freed).
    pub hibernated: u64,
    /// Times the session was rehydrated from a checkpoint on `Hello`.
    pub rehydrated: u64,
    /// Events the server discarded because their stream position was
    /// below the already-profiled watermark — resend overlap and
    /// duplicated frames, dropped so nothing is double-counted.
    pub events_skipped_on_resume: u64,
}

/// One entry of the hot-address top-K (the router-side counts that drive
/// Section IV-A redistribution).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotAddress {
    /// The memory address.
    pub addr: u64,
    /// Accesses observed on it.
    pub count: u64,
}

/// Per-worker row of the ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Worker index.
    pub worker: usize,
    /// Events enqueued to this worker (rerouted copies excluded).
    pub enqueued: u64,
    /// Events this worker popped and analyzed (rerouted copies excluded).
    pub consumed: u64,
    /// Events dropped on this worker's queue.
    pub dropped: u64,
    /// `enqueued - consumed` at shutdown (0 for a healthy worker).
    pub in_flight: u64,
    /// Event chunks this worker drained.
    pub consumed_chunks: u64,
    /// Nanoseconds the router spent blocked on this worker's full queue.
    pub stall_nanos: u64,
}

/// Wall-clock phase timings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Construction of the profiler until `finish()` was called (the
    /// feeding phase, overlapping the instrumented program).
    pub feed_nanos: u64,
    /// `finish()` entry until all workers were joined (the drain phase).
    pub drain_nanos: u64,
    /// Total: construction until the result was assembled.
    pub total_nanos: u64,
}

/// The frozen end-of-run metrics picture, attached to every
/// `ProfileResult`. All-zero (with `enabled == false`) when the metrics
/// feature is compiled out.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Whether the counters were compiled in (distinguishes zeros from
    /// "not measured").
    pub enabled: bool,
    /// Worker count of the run.
    pub workers: usize,
    /// Effective chaos/fault-injection seed of the run (0 when no fault
    /// plan was active). Surfaced so a failure observed under chaos can
    /// be replayed from the `--stats` artifact alone.
    pub chaos_seed: u64,
    /// The event-conservation ledger.
    pub conservation: Conservation,
    /// Chunk/queue traffic.
    pub chunks: ChunkStats,
    /// Total router stall time across all workers, nanoseconds.
    pub stall_nanos: u64,
    /// Signature gauges summed over all workers.
    pub signatures: SigGauges,
    /// Durability counters (checkpoints written, resume position).
    pub checkpoints: CheckpointMetrics,
    /// Service-layer resilience counters (reconnects, hibernation,
    /// duplicate-skip accounting); all zero for offline runs.
    pub service: ServiceMetrics,
    /// Hot-address top-K, ordered by count descending then address
    /// ascending.
    pub hot_addresses: Vec<HotAddress>,
    /// Per-worker ledger rows.
    pub per_worker: Vec<WorkerMetrics>,
    /// Phase timings.
    pub timings: PhaseTimings,
}

impl MetricsSnapshot {
    /// Renders the snapshot as pretty-printed JSON with a *stable* key
    /// order (hand-rolled, not reflection-based, so goldens don't churn).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"enabled\": {},", self.enabled);
        let _ = writeln!(s, "  \"workers\": {},", self.workers);
        let _ = writeln!(s, "  \"chaos_seed\": {},", self.chaos_seed);
        s.push_str("  \"conservation\": {\n");
        let c = &self.conservation;
        let _ = writeln!(s, "    \"pushed\": {},", c.pushed);
        let _ = writeln!(s, "    \"consumed\": {},", c.consumed);
        let _ = writeln!(s, "    \"dropped\": {},", c.dropped);
        let _ = writeln!(s, "    \"rerouted\": {},", c.rerouted);
        let _ = writeln!(s, "    \"in_flight_at_shutdown\": {}", c.in_flight_at_shutdown);
        s.push_str("  },\n");
        s.push_str("  \"chunks\": {\n");
        let k = &self.chunks;
        let _ = writeln!(s, "    \"pushed\": {},", k.pushed);
        let _ = writeln!(s, "    \"consumed\": {},", k.consumed);
        let _ = writeln!(s, "    \"queue_highwater\": {},", k.queue_highwater);
        let _ = writeln!(s, "    \"push_retries\": {},", k.push_retries);
        let _ = writeln!(s, "    \"empty_pops\": {}", k.empty_pops);
        s.push_str("  },\n");
        let _ = writeln!(s, "  \"stall_nanos\": {},", self.stall_nanos);
        s.push_str("  \"signatures\": {\n");
        let g = &self.signatures;
        let _ = writeln!(s, "    \"occupied_slots\": {},", g.occupied_slots);
        let _ = writeln!(s, "    \"total_slots\": {},", g.total_slots);
        let _ = writeln!(s, "    \"evictions\": {},", g.evictions);
        let _ = writeln!(s, "    \"est_fpr_pct\": {:.6}", g.est_fpr_pct);
        s.push_str("  },\n");
        let p = &self.checkpoints;
        let _ = writeln!(
            s,
            "  \"checkpoints\": {{ \"generations\": {}, \"last_bytes\": {}, \
             \"write_nanos\": {}, \"resumed_from\": {} }},",
            p.generations, p.last_bytes, p.write_nanos, p.resumed_from
        );
        let v = &self.service;
        let _ = writeln!(
            s,
            "  \"service\": {{ \"reconnects\": {}, \"hibernated\": {}, \
             \"rehydrated\": {}, \"events_skipped_on_resume\": {} }},",
            v.reconnects, v.hibernated, v.rehydrated, v.events_skipped_on_resume
        );
        s.push_str("  \"hot_addresses\": [");
        for (i, h) in self.hot_addresses.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(s, "    {{ \"addr\": {}, \"count\": {} }}", h.addr, h.count);
        }
        s.push_str(if self.hot_addresses.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"per_worker\": [");
        for (i, w) in self.per_worker.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    {{ \"worker\": {}, \"enqueued\": {}, \"consumed\": {}, \"dropped\": {}, \
                 \"in_flight\": {}, \"consumed_chunks\": {}, \"stall_nanos\": {} }}",
                w.worker,
                w.enqueued,
                w.consumed,
                w.dropped,
                w.in_flight,
                w.consumed_chunks,
                w.stall_nanos
            );
        }
        s.push_str(if self.per_worker.is_empty() { "],\n" } else { "\n  ],\n" });
        let t = &self.timings;
        let _ = writeln!(
            s,
            "  \"timings_nanos\": {{ \"feed\": {}, \"drain\": {}, \"total\": {} }}",
            t.feed_nanos, t.drain_nanos, t.total_nanos
        );
        s.push_str("}\n");
        s
    }

    /// Renders the snapshot as human-readable text (same field order as
    /// the JSON form).
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = writeln!(s, "metrics: {}", if self.enabled { "enabled" } else { "disabled" });
        let _ = writeln!(s, "workers: {}", self.workers);
        if self.chaos_seed != 0 {
            let _ = writeln!(s, "chaos seed: {}", self.chaos_seed);
        }
        let c = &self.conservation;
        let _ = writeln!(
            s,
            "conservation: pushed={} consumed={} dropped={} rerouted={} in_flight={} ({})",
            c.pushed,
            c.consumed,
            c.dropped,
            c.rerouted,
            c.in_flight_at_shutdown,
            if c.holds() { "law holds" } else { "LAW VIOLATED" }
        );
        let k = &self.chunks;
        let _ = writeln!(
            s,
            "chunks: pushed={} consumed={} queue_highwater={} push_retries={} empty_pops={}",
            k.pushed, k.consumed, k.queue_highwater, k.push_retries, k.empty_pops
        );
        let _ = writeln!(s, "stall: {} ns", self.stall_nanos);
        let g = &self.signatures;
        let _ = writeln!(
            s,
            "signatures: occupied={}/{} evictions={} est_fpr={:.4}%",
            g.occupied_slots, g.total_slots, g.evictions, g.est_fpr_pct
        );
        let p = &self.checkpoints;
        if p.generations > 0 || p.resumed_from > 0 {
            let _ = writeln!(
                s,
                "checkpoints: generations={} last_bytes={} write={}ns resumed_from={}",
                p.generations, p.last_bytes, p.write_nanos, p.resumed_from
            );
        }
        let v = &self.service;
        if *v != ServiceMetrics::default() {
            let _ = writeln!(
                s,
                "service: reconnects={} hibernated={} rehydrated={} skipped_on_resume={}",
                v.reconnects, v.hibernated, v.rehydrated, v.events_skipped_on_resume
            );
        }
        if !self.hot_addresses.is_empty() {
            let _ = writeln!(s, "hot addresses:");
            for h in &self.hot_addresses {
                let _ = writeln!(s, "  {:#x}  {}", h.addr, h.count);
            }
        }
        if !self.per_worker.is_empty() {
            let _ = writeln!(s, "per worker:");
            for w in &self.per_worker {
                let _ =
                    writeln!(
                    s,
                    "  w{}: enqueued={} consumed={} dropped={} in_flight={} chunks={} stall={}ns",
                    w.worker, w.enqueued, w.consumed, w.dropped, w.in_flight, w.consumed_chunks,
                    w.stall_nanos
                );
            }
        }
        let t = &self.timings;
        let _ = writeln!(
            s,
            "timings: feed={}ns drain={}ns total={}ns",
            t.feed_nanos, t.drain_nanos, t.total_nanos
        );
        s
    }
}

// ---------------------------------------------------------------------------
// Per-session service accounting.
// ---------------------------------------------------------------------------

/// Per-session counters for the networked profiling service: what one
/// client connection pushed and what the server did with it. Unlike the
/// hot-path [`Counter`]s these are plain fields — they tick once per
/// *frame*, not per access, so they stay compiled in even when the
/// `enabled` feature is off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionMetrics {
    /// Frames received (all kinds).
    pub frames: u64,
    /// `Chunk` frames received.
    pub chunks: u64,
    /// Events fed into the engine (accesses + loop/call/dealloc events).
    pub events: u64,
    /// `Sync` round-trips served.
    pub syncs: u64,
    /// Live-analysis `Query` frames answered.
    pub queries: u64,
    /// Payload bytes received across all frames.
    pub bytes_in: u64,
    /// Events the session skipped because a checkpoint already covered
    /// them (resume position handed to the client in `HelloAck`).
    pub resumed_from: u64,
    /// Checkpoint generations written for this session.
    pub checkpoint_generations: u64,
    /// Times a client re-`Hello`ed into this session name.
    pub reconnects: u64,
    /// Times this session was hibernated to the checkpoint store.
    pub hibernated: u64,
    /// Times this session was rehydrated from a checkpoint on `Hello`.
    pub rehydrated: u64,
    /// Events discarded because their positions were below the
    /// already-profiled watermark (resend overlap, duplicate frames).
    pub events_skipped_on_resume: u64,
}

impl SessionMetrics {
    /// Renders the counters as a single stable-keyed JSON object — the
    /// payload of the protocol's `Stats` frame.
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"frames\": {}, \"chunks\": {}, \"events\": {}, \"syncs\": {}, \
             \"queries\": {}, \
             \"bytes_in\": {}, \"resumed_from\": {}, \"checkpoint_generations\": {}, \
             \"reconnects\": {}, \"hibernated\": {}, \"rehydrated\": {}, \
             \"events_skipped_on_resume\": {} }}",
            self.frames,
            self.chunks,
            self.events,
            self.syncs,
            self.queries,
            self.bytes_in,
            self.resumed_from,
            self.checkpoint_generations,
            self.reconnects,
            self.hibernated,
            self.rehydrated,
            self.events_skipped_on_resume
        )
    }
}

// ---------------------------------------------------------------------------
// Observer hook.
// ---------------------------------------------------------------------------

/// Subscription hook into pipeline events, for benches and tests that
/// want live visibility without parsing exported output. All methods
/// default to no-ops; implement only what you watch. Called from the
/// router thread (never from workers), so implementations need `Sync`
/// only because the profiler itself may be moved across threads.
pub trait PipelineObserver: Send + Sync {
    /// A Section IV-A redistribution moved `moved` hot addresses to new
    /// owners.
    fn on_redistribution(&self, moved: usize) {
        let _ = moved;
    }

    /// Worker `worker` was declared failed (panicked or unresponsive).
    fn on_worker_failure(&self, worker: usize) {
        let _ = worker;
    }

    /// The run finished; `snapshot` is the final metrics picture (also
    /// attached to the returned `ProfileResult`).
    fn on_finish(&self, snapshot: &MetricsSnapshot) {
        let _ = snapshot;
    }
}

/// An optional, shareable [`PipelineObserver`] — the form carried by the
/// profiler configuration. The default is "no observer"; every dispatch
/// through an empty handle is a branch on a `None`.
#[derive(Clone, Default)]
pub struct ObserverHandle(Option<Arc<dyn PipelineObserver>>);

impl ObserverHandle {
    /// Wraps an observer.
    pub fn new(observer: Arc<dyn PipelineObserver>) -> Self {
        ObserverHandle(Some(observer))
    }

    /// The empty handle (no observer subscribed).
    pub fn none() -> Self {
        ObserverHandle(None)
    }

    /// True when an observer is subscribed.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// Forwards [`PipelineObserver::on_redistribution`].
    #[inline]
    pub fn on_redistribution(&self, moved: usize) {
        if let Some(o) = &self.0 {
            o.on_redistribution(moved);
        }
    }

    /// Forwards [`PipelineObserver::on_worker_failure`].
    #[inline]
    pub fn on_worker_failure(&self, worker: usize) {
        if let Some(o) = &self.0 {
            o.on_worker_failure(worker);
        }
    }

    /// Forwards [`PipelineObserver::on_finish`].
    #[inline]
    pub fn on_finish(&self, snapshot: &MetricsSnapshot) {
        if let Some(o) = &self.0 {
            o.on_finish(snapshot);
        }
    }
}

impl std::fmt::Debug for ObserverHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() { "ObserverHandle(set)" } else { "ObserverHandle(none)" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_matches_build_mode() {
        let c = Counter::new();
        let v = c.inc();
        c.add(4);
        if ENABLED {
            assert_eq!(v, 1);
            assert_eq!(c.get(), 5);
        } else {
            assert_eq!(v, 0);
            assert_eq!(c.get(), 0);
        }
    }

    #[test]
    fn max_gauge_keeps_peak() {
        let g = MaxGauge::new();
        g.record(3);
        g.record(7);
        g.record(5);
        assert_eq!(g.get(), if ENABLED { 7 } else { 0 });
    }

    #[test]
    fn stopwatch_is_monotone() {
        let w = Stopwatch::start();
        let a = w.elapsed_nanos();
        let b = w.elapsed_nanos();
        assert!(b >= a);
        if !ENABLED {
            assert_eq!(b, 0);
        }
    }

    #[test]
    fn conservation_law() {
        let mut c = Conservation {
            pushed: 100,
            consumed: 80,
            dropped: 10,
            rerouted: 6,
            in_flight_at_shutdown: 4,
        };
        assert!(c.holds());
        c.dropped += 1;
        assert!(!c.holds());
    }

    #[test]
    fn json_has_stable_key_order() {
        let snap = MetricsSnapshot {
            enabled: true,
            workers: 2,
            hot_addresses: vec![HotAddress { addr: 0x1000, count: 9 }],
            per_worker: vec![WorkerMetrics { worker: 0, ..Default::default() }],
            ..Default::default()
        };
        let j = snap.to_json();
        let keys = [
            "\"enabled\"",
            "\"workers\"",
            "\"conservation\"",
            "\"chunks\"",
            "\"stall_nanos\"",
            "\"signatures\"",
            "\"checkpoints\"",
            "\"service\"",
            "\"hot_addresses\"",
            "\"per_worker\"",
            "\"timings_nanos\"",
        ];
        let mut last = 0;
        for k in keys {
            let at = j[last..].find(k).unwrap_or_else(|| panic!("{k} missing or out of order"));
            last += at + k.len();
        }
        // Balanced and parseable-looking: every line ends in a JSON
        // structural character, no trailing commas before closers.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains(",\n  }"));
        assert!(!j.contains(",\n  ]"));
    }

    #[test]
    fn empty_lists_render_as_empty_arrays() {
        let j = MetricsSnapshot::default().to_json();
        assert!(j.contains("\"hot_addresses\": []"));
        assert!(j.contains("\"per_worker\": []"));
    }

    #[test]
    fn checkpoint_metrics_render_in_both_forms() {
        let mut snap = MetricsSnapshot { enabled: true, ..Default::default() };
        // A fresh run with no checkpoints keeps the text form quiet but
        // the JSON keys stable.
        assert!(!snap.to_text().contains("checkpoints:"));
        assert!(snap.to_json().contains("\"checkpoints\": { \"generations\": 0"));
        snap.checkpoints = CheckpointMetrics {
            generations: 3,
            last_bytes: 4096,
            write_nanos: 1200,
            resumed_from: 500,
        };
        let t = snap.to_text();
        assert!(t.contains("checkpoints: generations=3 last_bytes=4096"), "{t}");
        assert!(t.contains("resumed_from=500"), "{t}");
        let j = snap.to_json();
        assert!(j.contains("\"generations\": 3"), "{j}");
        assert!(j.contains("\"resumed_from\": 500"), "{j}");
    }

    #[test]
    fn service_metrics_render_in_both_forms() {
        let mut snap = MetricsSnapshot { enabled: true, ..Default::default() };
        // Offline runs keep the text form quiet but the JSON keys stable.
        assert!(!snap.to_text().contains("service:"));
        assert!(snap.to_json().contains("\"service\": { \"reconnects\": 0"));
        snap.service = ServiceMetrics {
            reconnects: 2,
            hibernated: 1,
            rehydrated: 1,
            events_skipped_on_resume: 4096,
        };
        let t = snap.to_text();
        assert!(t.contains("service: reconnects=2 hibernated=1 rehydrated=1"), "{t}");
        let j = snap.to_json();
        assert!(j.contains("\"events_skipped_on_resume\": 4096"), "{j}");
    }

    #[test]
    fn session_metrics_json_carries_resilience_counters() {
        let m = SessionMetrics {
            reconnects: 3,
            hibernated: 1,
            rehydrated: 2,
            events_skipped_on_resume: 77,
            ..Default::default()
        };
        let j = m.to_json();
        for want in [
            "\"reconnects\": 3",
            "\"hibernated\": 1",
            "\"rehydrated\": 2",
            "\"events_skipped_on_resume\": 77",
        ] {
            assert!(j.contains(want), "{want} missing in {j}");
        }
    }

    #[test]
    fn text_reports_violations() {
        let mut snap = MetricsSnapshot { enabled: true, ..Default::default() };
        snap.conservation.pushed = 5;
        assert!(snap.to_text().contains("LAW VIOLATED"));
        snap.conservation.consumed = 5;
        assert!(snap.to_text().contains("law holds"));
    }

    #[test]
    fn observer_handle_dispatches() {
        #[derive(Default)]
        struct Probe(std::sync::atomic::AtomicUsize);
        impl PipelineObserver for Probe {
            fn on_worker_failure(&self, _worker: usize) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let probe = Arc::new(Probe::default());
        let h = ObserverHandle::new(probe.clone());
        assert!(h.is_set());
        assert_eq!(format!("{h:?}"), "ObserverHandle(set)");
        h.on_worker_failure(1);
        h.on_redistribution(3); // default no-op must not panic
        h.on_finish(&MetricsSnapshot::default());
        assert_eq!(probe.0.load(std::sync::atomic::Ordering::SeqCst), 1);
        let empty = ObserverHandle::none();
        assert!(!empty.is_set());
        assert_eq!(format!("{empty:?}"), "ObserverHandle(none)");
        empty.on_finish(&MetricsSnapshot::default());
    }
}
