//! Process-wide graceful-shutdown flag, set from SIGINT/SIGTERM.
//!
//! std has no signal API, and this workspace takes no external
//! dependencies, so the handler is installed through the C `signal`
//! binding that libc links into every Rust binary. The handler does the
//! only async-signal-safe thing possible: it sets a static atomic. The
//! accept loop and connection threads poll the flag between frames
//! (their sockets use short read timeouts), write their emergency
//! checkpoints, and exit with a documented code — instead of dying
//! mid-checkpoint-write.

use std::sync::atomic::{AtomicBool, Ordering};

/// Exit code for "terminated by signal after a clean shutdown"
/// (SIGINT or SIGTERM; emergency checkpoints were written first).
pub const SIGINT_EXIT: i32 = 7;
/// Same code for SIGTERM — one documented code for both signals.
pub const SIGTERM_EXIT: i32 = 7;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// The process-wide shutdown flag. `true` once a SIGINT/SIGTERM was
/// received (or [`request_shutdown`] was called).
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

/// Sets the flag directly — lets tests and in-process servers trigger
/// the same path a signal would.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX signal(2), provided by libc (always linked on unix).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (a no-op off unix). Safe to
/// call more than once. Note that with handlers installed, interrupted
/// blocking syscalls are restarted by libc (`SA_RESTART` semantics of
/// `signal(2)`), which is why the server's sockets poll with read
/// timeouts rather than waiting for an `EINTR` that may never surface.
pub fn install_signal_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn request_sets_the_flag() {
        install_signal_handlers();
        assert_eq!(SIGINT_EXIT, SIGTERM_EXIT);
        request_shutdown();
        assert!(shutdown_flag().load(Ordering::SeqCst));
        // Reset for other tests in this process (the flag is static).
        shutdown_flag().store(false, Ordering::SeqCst);
    }
}
