//! Seeded network-fault injection for the DPSV service: a stream
//! wrapper that kills, stutters, stalls and duplicates traffic at
//! *deterministic* points, so every recovery path the retry/resume
//! machinery claims to handle can be exercised on demand and replayed
//! from a seed.
//!
//! [`NetFaultPlan`] is the builder (mirroring `dp-queue`'s engine-level
//! `FaultPlan` style, but aimed at the socket rather than the worker
//! pool); [`ChaosStream`] wraps any `Read + Write` transport — a client
//! connection in `depprof push --chaos`, an accepted connection in
//! `depprof serve --chaos`, or an in-memory stream in tests.
//!
//! The write side carries a tiny DPSV frame parser (preamble, then
//! `tag len payload checksum`), which is what makes frame-offset kills
//! and last-frame duplication exact: a reset lands on a frame boundary,
//! and only completed client data frames (`Chunk`/`LoopEvent`/`Sync`)
//! are ever re-delivered — the faults a real flaky network plus a
//! naively retrying middlebox would produce.

use std::io::{self, Read, Write};

/// Tags of the client data-plane frames `ChaosStream` may duplicate.
/// Control frames (`Hello`, replies) are never duplicated: a duplicated
/// `Hello` is a different session, not a transport fault.
const DUP_TAGS: [u8; 3] = [3, 4, 5]; // Chunk, LoopEvent, Sync

/// A deterministic network-fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// Seed for short-read/short-write sizing (0 picks a fixed default).
    pub seed: u64,
    /// Reset the connection once this many payload bytes were written
    /// (the preamble does not count) — kills mid-frame.
    pub reset_at_bytes: Option<u64>,
    /// Reset the connection once this many complete frames were written
    /// — kills exactly on a frame boundary.
    pub reset_at_frames: Option<u64>,
    /// Fragment reads and writes into small random pieces.
    pub short_io: bool,
    /// Stall for [`NetFaultPlan::stall_ms`] every this many written
    /// frames (0 = never).
    pub stall_every: u64,
    /// Stall duration, milliseconds.
    pub stall_ms: u64,
    /// Re-deliver every Nth completed data frame (duplicate delivery of
    /// the last unacked frame, as a retransmitting network would).
    pub dup_every: Option<u64>,
}

impl NetFaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the RNG seed for short-I/O sizing.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Resets the connection after `n` written payload bytes.
    pub fn with_reset_at_bytes(mut self, n: u64) -> Self {
        self.reset_at_bytes = Some(n);
        self
    }

    /// Resets the connection after `n` complete written frames.
    pub fn with_reset_at_frames(mut self, n: u64) -> Self {
        self.reset_at_frames = Some(n);
        self
    }

    /// Fragments reads and writes into short pieces.
    pub fn with_short_io(mut self) -> Self {
        self.short_io = true;
        self
    }

    /// Stalls `ms` milliseconds every `every` written frames.
    pub fn with_stall(mut self, every: u64, ms: u64) -> Self {
        self.stall_every = every;
        self.stall_ms = ms;
        self
    }

    /// Duplicates every `n`th completed data frame.
    pub fn with_dup_every(mut self, n: u64) -> Self {
        self.dup_every = Some(n);
        self
    }

    /// True when any fault is scheduled.
    pub fn is_active(&self) -> bool {
        *self != NetFaultPlan::default() && {
            self.reset_at_bytes.is_some()
                || self.reset_at_frames.is_some()
                || self.short_io
                || (self.stall_every > 0 && self.stall_ms > 0)
                || self.dup_every.is_some()
        }
    }

    /// Parses the CLI spec: comma-separated directives out of
    /// `seed=N`, `reset-bytes=N`, `reset-frames=N`, `short-io`,
    /// `stall=EVERYxMS`, `dup=N`. Example:
    /// `seed=7,reset-frames=12,short-io,stall=8x2,dup=5`.
    pub fn parse(spec: &str) -> Result<NetFaultPlan, String> {
        let mut plan = NetFaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, val) = part.split_once('=').unwrap_or((part, ""));
            let num = |what: &str| -> Result<u64, String> {
                val.parse().map_err(|_| format!("--chaos {what}: not a number: '{val}'"))
            };
            match key {
                "seed" => plan.seed = num("seed")?,
                "reset-bytes" => plan.reset_at_bytes = Some(num("reset-bytes")?),
                "reset-frames" => plan.reset_at_frames = Some(num("reset-frames")?),
                "short-io" => plan.short_io = true,
                "dup" => plan.dup_every = Some(num("dup")?.max(1)),
                "stall" => {
                    let (every, ms) = val
                        .split_once('x')
                        .ok_or_else(|| format!("--chaos stall: expected EVERYxMS, got '{val}'"))?;
                    plan.stall_every = every
                        .parse()
                        .map_err(|_| format!("--chaos stall: not a number: '{every}'"))?;
                    plan.stall_ms =
                        ms.parse().map_err(|_| format!("--chaos stall: not a number: '{ms}'"))?;
                }
                other => return Err(format!("--chaos: unknown directive '{other}'")),
            }
        }
        Ok(plan)
    }
}

/// Where the write-side frame parser is within the byte stream.
#[derive(Debug)]
enum WireState {
    /// Counting down the 5 preamble bytes.
    Preamble(usize),
    /// Collecting the 5-byte frame header (tag + length).
    Header,
    /// Collecting `remaining` payload+checksum bytes of the frame.
    Body { remaining: usize },
}

/// A `Read + Write` wrapper executing a [`NetFaultPlan`] against the
/// wrapped transport. Deterministic: the same plan over the same
/// traffic produces the same faults at the same offsets.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    plan: NetFaultPlan,
    rng: u64,
    /// Payload bytes written so far (preamble excluded).
    out_bytes: u64,
    /// Complete frames written so far.
    out_frames: u64,
    state: WireState,
    /// Bytes of the in-progress frame (header + body), for duplication.
    cur: Vec<u8>,
    /// Once a reset fired every later operation fails the same way.
    tripped: bool,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: NetFaultPlan) -> Self {
        let rng = if plan.seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { plan.seed };
        ChaosStream {
            inner,
            plan,
            rng,
            out_bytes: 0,
            out_frames: 0,
            state: WireState::Preamble(5),
            cur: Vec::new(),
            tripped: false,
        }
    }

    /// Complete frames written through this wrapper so far.
    pub fn frames_written(&self) -> u64 {
        self.out_frames
    }

    /// Consumes the wrapper, returning the transport.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — tiny, seedable, good enough to vary chop sizes.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn reset_error(&mut self) -> io::Error {
        self.tripped = true;
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: injected connection reset")
    }
}

impl<S: Read + Write> ChaosStream<S> {
    /// Advances the frame parser over `chunk` (bytes actually written),
    /// firing frame-boundary faults (duplication, stalls, frame-offset
    /// resets arm for the *next* write so the boundary frame itself is
    /// delivered intact).
    fn account_written(&mut self, chunk: &[u8]) -> io::Result<()> {
        let mut i = 0;
        while i < chunk.len() {
            match self.state {
                WireState::Preamble(ref mut left) => {
                    let take = (*left).min(chunk.len() - i);
                    *left -= take;
                    i += take;
                    if *left == 0 {
                        self.state = WireState::Header;
                    }
                }
                WireState::Header => {
                    self.cur.push(chunk[i]);
                    i += 1;
                    self.out_bytes += 1;
                    if self.cur.len() == 5 {
                        let len = u32::from_le_bytes(self.cur[1..5].try_into().unwrap()) as usize;
                        // payload + trailing checksum byte
                        self.state = WireState::Body { remaining: len + 1 };
                    }
                }
                WireState::Body { ref mut remaining } => {
                    let take = (*remaining).min(chunk.len() - i);
                    self.cur.extend_from_slice(&chunk[i..i + take]);
                    *remaining -= take;
                    i += take;
                    self.out_bytes += take as u64;
                    if *remaining == 0 {
                        self.frame_complete()?;
                        self.state = WireState::Header;
                    }
                }
            }
        }
        Ok(())
    }

    fn frame_complete(&mut self) -> io::Result<()> {
        self.out_frames += 1;
        let tag = self.cur[0];
        let frame = std::mem::take(&mut self.cur);
        if let Some(every) = self.plan.dup_every {
            if self.out_frames.is_multiple_of(every.max(1)) && DUP_TAGS.contains(&tag) {
                // Duplicate delivery of the frame that just completed —
                // the receiver must dedupe it positionally.
                self.inner.write_all(&frame)?;
            }
        }
        if self.plan.stall_every > 0
            && self.plan.stall_ms > 0
            && self.out_frames.is_multiple_of(self.plan.stall_every)
        {
            std::thread::sleep(std::time::Duration::from_millis(self.plan.stall_ms));
        }
        Ok(())
    }
}

impl<S: Read + Write> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.tripped {
            return Err(self.reset_error());
        }
        let cap = if self.plan.short_io && buf.len() > 1 {
            let n = (self.next_rand() % 16 + 1) as usize;
            n.min(buf.len())
        } else {
            buf.len()
        };
        self.inner.read(&mut buf[..cap])
    }
}

impl<S: Read + Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.tripped {
            return Err(self.reset_error());
        }
        if buf.is_empty() {
            return Ok(0);
        }
        let mut cap = buf.len();
        let pre_left = match self.state {
            WireState::Preamble(left) => left,
            _ => 0,
        };
        // A frame-offset reset arms once the boundary frame completed:
        // that frame is delivered intact, the next write dies. The
        // preamble is handshake, not a frame — it always goes through
        // (so a `reset-frames=0` plan still yields a recognizable DPSV
        // connection that dies before its first frame).
        if let Some(limit) = self.plan.reset_at_frames {
            if self.out_frames >= limit {
                if pre_left == 0 {
                    return Err(self.reset_error());
                }
                cap = cap.min(pre_left);
            }
        }
        // A byte-offset reset is exact: write up to the boundary, then
        // fail. Preamble bytes don't count toward the budget.
        if let Some(limit) = self.plan.reset_at_bytes {
            let left = limit.saturating_sub(self.out_bytes) as usize + pre_left;
            if left == 0 {
                return Err(self.reset_error());
            }
            cap = cap.min(left);
        }
        if self.plan.short_io && cap > 1 {
            cap = cap.min((self.next_rand() % 16 + 1) as usize);
        }
        let n = self.inner.write(&buf[..cap])?;
        self.account_written(&buf[..n])?;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.tripped {
            return Err(self.reset_error());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::protocol::{self, Frame, MAX_FRAME_BYTES};
    use dp_types::{loc::loc, MemAccess};
    use std::io::Cursor;

    fn chunk(base: u64, n: u64) -> Frame {
        Frame::Chunk {
            base,
            accesses: (0..n)
                .map(|i| MemAccess::read(0x100 + i * 8, i + 1, loc(1, 1), 0, 0))
                .collect(),
        }
    }

    fn push_frames(plan: NetFaultPlan, frames: &[Frame]) -> (Vec<u8>, Result<(), std::io::Error>) {
        let mut s = ChaosStream::new(Cursor::new(Vec::new()), plan);
        let run = (|| {
            protocol::write_preamble(&mut s)?;
            for f in frames {
                protocol::write_frame(&mut s, f).map_err(|e| match e {
                    protocol::ProtocolError::Io(io) => io,
                    other => std::io::Error::other(other),
                })?;
            }
            Ok(())
        })();
        (s.into_inner().into_inner(), run)
    }

    #[test]
    fn parse_round_trips_every_directive() {
        let plan =
            NetFaultPlan::parse("seed=7,reset-frames=12,reset-bytes=4096,short-io,stall=8x2,dup=5")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.reset_at_frames, Some(12));
        assert_eq!(plan.reset_at_bytes, Some(4096));
        assert!(plan.short_io);
        assert_eq!((plan.stall_every, plan.stall_ms), (8, 2));
        assert_eq!(plan.dup_every, Some(5));
        assert!(plan.is_active());
        assert!(!NetFaultPlan::parse("").unwrap().is_active());
        assert!(NetFaultPlan::parse("bogus=1").is_err());
        assert!(NetFaultPlan::parse("stall=8").is_err());
    }

    #[test]
    fn reset_at_frame_boundary_delivers_exactly_that_many_frames() {
        let frames = [chunk(0, 4), chunk(4, 4), chunk(8, 4)];
        for k in 0..=frames.len() as u64 {
            let (bytes, run) = push_frames(NetFaultPlan::new().with_reset_at_frames(k), &frames);
            if k < frames.len() as u64 {
                let e = run.unwrap_err();
                assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "k={k}");
            } else {
                run.unwrap();
            }
            // Whatever landed before the reset is intact and parseable.
            let mut r = &bytes[..];
            protocol::read_preamble(&mut r).unwrap();
            let mut got = 0;
            while let Ok(Some(f)) = protocol::read_frame(&mut r, MAX_FRAME_BYTES) {
                assert_eq!(f, frames[got]);
                got += 1;
            }
            assert_eq!(got as u64, k, "exactly k complete frames survive");
        }
    }

    #[test]
    fn reset_at_bytes_tears_mid_frame() {
        let frames = [chunk(0, 64)];
        let (bytes, run) = push_frames(NetFaultPlan::new().with_reset_at_bytes(100), &frames);
        assert_eq!(run.unwrap_err().kind(), std::io::ErrorKind::ConnectionReset);
        assert_eq!(bytes.len() as u64, 5 + 100, "preamble + exactly the byte budget");
        let mut r = &bytes[..];
        protocol::read_preamble(&mut r).unwrap();
        // The torn frame is detected, not silently accepted.
        assert!(protocol::read_frame(&mut r, MAX_FRAME_BYTES).is_err());
    }

    #[test]
    fn duplicated_data_frames_decode_twice_and_short_io_is_lossless() {
        let frames = [chunk(0, 3), Frame::Sync { nonce: 9 }, chunk(3, 2)];
        let plan = NetFaultPlan::new().with_dup_every(1).with_short_io().with_seed(42);
        let (bytes, run) = push_frames(plan, &frames);
        run.unwrap();
        let mut r = &bytes[..];
        protocol::read_preamble(&mut r).unwrap();
        let mut got = Vec::new();
        while let Some(f) = protocol::read_frame(&mut r, MAX_FRAME_BYTES).unwrap() {
            got.push(f);
        }
        let want: Vec<Frame> = frames.iter().flat_map(|f| [f.clone(), f.clone()]).collect();
        assert_eq!(got, want, "every data frame delivered exactly twice, in order");
    }

    #[test]
    fn hello_and_replies_are_never_duplicated() {
        let hello = Frame::Hello(dp_types::protocol::Hello {
            session: "s".into(),
            spec: vec![1],
            checkpoint_every: 0,
            names: vec![],
        });
        let (bytes, run) =
            push_frames(NetFaultPlan::new().with_dup_every(1), std::slice::from_ref(&hello));
        run.unwrap();
        let mut r = &bytes[..];
        protocol::read_preamble(&mut r).unwrap();
        assert_eq!(protocol::read_frame(&mut r, MAX_FRAME_BYTES).unwrap(), Some(hello));
        assert!(protocol::read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());
    }
}
