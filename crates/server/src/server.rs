//! The socket front-end: accept loop, per-connection threads, the
//! global session cap, and shutdown/disconnect handling.

use crate::chaos::{ChaosStream, NetFaultPlan};
use crate::engine::SessionEngine;
use crate::shutdown;
use dp_types::protocol::{
    self, error_code, Frame, ProtocolError, MAX_FRAME_BYTES, PROTOCOL_MAGIC, PROTOCOL_VERSION,
};
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server-wide policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-session cap; a client past it receives a typed
    /// `Busy{retry_after_ms}` instead of queueing invisibly.
    pub max_sessions: usize,
    /// Base directory for per-session checkpoints (`<dir>/<session>`);
    /// `None` disables durability.
    pub checkpoint_dir: Option<PathBuf>,
    /// Default checkpoint interval (events) for sessions whose `Hello`
    /// leaves it at 0. 0 = only emergency checkpoints.
    pub checkpoint_every: u64,
    /// Per-frame payload bound — the connection's bounded read buffer.
    pub max_frame_bytes: usize,
    /// How often blocked reads wake up to observe the shutdown flag.
    pub poll_interval_ms: u64,
    /// The reconnect-delay hint handed to refused clients in `Busy`.
    pub busy_retry_ms: u64,
    /// Hibernate a durable session whose connection has been idle this
    /// long: checkpoint it, evict the engine, free the slot (0 = never).
    /// The client is told with `Error{HIBERNATED}` and a re-`Hello`
    /// rehydrates the session exactly where it stopped.
    pub hibernate_after_ms: u64,
    /// Seeded network-fault injection applied to every accepted
    /// connection (inactive by default; `depprof serve --chaos`).
    pub fault_plan: NetFaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 16,
            checkpoint_dir: None,
            checkpoint_every: 0,
            max_frame_bytes: MAX_FRAME_BYTES,
            poll_interval_ms: 50,
            busy_retry_ms: 200,
            hibernate_after_ms: 0,
            fault_plan: NetFaultPlan::default(),
        }
    }
}

/// A socket stream the connection handler can drive: both `TcpStream`
/// and `UnixStream`, behind read timeouts so the handler can poll the
/// shutdown flag between frames.
pub(crate) trait Conn: Read + Write + Send {
    fn set_read_timeout_ms(&self, ms: Option<u64>) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout_ms(&self, ms: Option<u64>) -> io::Result<()> {
        self.set_read_timeout(ms.map(Duration::from_millis))
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn set_read_timeout_ms(&self, ms: Option<u64>) -> io::Result<()> {
        self.set_read_timeout(ms.map(Duration::from_millis))
    }
}

impl<S: Conn> Conn for ChaosStream<S> {
    fn set_read_timeout_ms(&self, ms: Option<u64>) -> io::Result<()> {
        self.get_ref().set_read_timeout_ms(ms)
    }
}

/// Retries transient read outcomes (timeout, EINTR) so `read_exact`
/// mid-frame never tears a frame apart on a read-timeout tick.
struct Retry<'a, S: Conn>(&'a mut S);

impl<S: Conn> Read for Retry<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.0.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                other => return other,
            }
        }
    }
}

/// Outcome of polling for the next frame's first byte.
enum Poll {
    Byte(u8),
    Eof,
    Shutdown,
    /// The idle deadline passed with no traffic (hibernation trigger).
    Idle,
}

fn poll_byte<S: Conn>(
    s: &mut S,
    stop: &AtomicBool,
    idle_deadline: Option<Instant>,
) -> Result<Poll, ProtocolError> {
    let mut b = [0u8; 1];
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(Poll::Shutdown);
        }
        if idle_deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(Poll::Idle);
        }
        match s.read(&mut b) {
            Ok(0) => return Ok(Poll::Eof),
            Ok(_) => return Ok(Poll::Byte(b[0])),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
}

/// Decrements the active-session gauge when a session ends, however it
/// ends.
struct SessionSlot(Arc<AtomicUsize>);

impl Drop for SessionSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Exclusive claim on a session name for the lifetime of its
/// connection, released however the connection ends.
struct NameLease<'a> {
    shared: &'a Shared,
    name: String,
}

impl Drop for NameLease<'_> {
    fn drop(&mut self) {
        self.shared.live_names.lock().expect("name registry poisoned").remove(&self.name);
    }
}

struct Shared {
    cfg: ServerConfig,
    active: Arc<AtomicUsize>,
    next_id: AtomicU64,
    /// `Hello` count per session name across the server's lifetime —
    /// the second `Hello` under a name is the first reconnect.
    hellos: Mutex<HashMap<String, u64>>,
    /// Session names with a live engine. A reconnect can land before
    /// the dead connection's thread has noticed the EOF and written its
    /// emergency checkpoint; admitting it would put two engines on one
    /// checkpoint store and lose the resume watermark. The second
    /// `Hello` is refused with `Busy` until the name is released.
    live_names: Mutex<HashSet<String>>,
}

impl Shared {
    fn new(cfg: ServerConfig) -> Arc<Shared> {
        Arc::new(Shared {
            cfg,
            active: Arc::new(AtomicUsize::new(0)),
            next_id: AtomicU64::new(1),
            hellos: Mutex::new(HashMap::new()),
            live_names: Mutex::new(HashSet::new()),
        })
    }

    /// Registers one more `Hello` for `session`, returning how many
    /// reconnects (re-`Hello`s after the first) the name has seen.
    fn count_hello(&self, session: &str) -> u64 {
        let mut map = self.hellos.lock().expect("hello registry poisoned");
        let n = map.entry(session.to_string()).or_insert(0);
        *n += 1;
        *n - 1
    }
}

/// The profiling service: accept loop + per-connection threads.
pub struct Server {
    shared: Arc<Shared>,
    tcp: Option<TcpListener>,
    #[cfg(unix)]
    unix: Option<UnixListener>,
}

impl Server {
    /// Binds a TCP listener (use port 0 for an ephemeral port, then
    /// [`Server::local_addr`]).
    pub fn bind_tcp(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<Server> {
        let tcp = TcpListener::bind(addr)?;
        tcp.set_nonblocking(true)?;
        Ok(Server {
            shared: Shared::new(cfg),
            tcp: Some(tcp),
            #[cfg(unix)]
            unix: None,
        })
    }

    /// Binds a Unix-socket listener (unix only). An existing socket
    /// file at `path` is removed first.
    #[cfg(unix)]
    pub fn bind_unix(path: impl Into<PathBuf>, cfg: ServerConfig) -> io::Result<Server> {
        let path = path.into();
        let _ = std::fs::remove_file(&path);
        let unix = UnixListener::bind(&path)?;
        unix.set_nonblocking(true)?;
        Ok(Server { shared: Shared::new(cfg), tcp: None, unix: Some(unix) })
    }

    /// The bound TCP address, when TCP-bound.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Sessions currently active.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Runs the accept loop until `stop` becomes true, then joins every
    /// connection thread (each of which writes its session's emergency
    /// checkpoint before exiting). Pass
    /// [`shutdown::shutdown_flag()`] to tie the loop to SIGINT/SIGTERM.
    pub fn run(&self, stop: &'static AtomicBool) -> io::Result<()> {
        let mut threads = Vec::new();
        let poll = Duration::from_millis(self.shared.cfg.poll_interval_ms.max(1));
        while !stop.load(Ordering::SeqCst) {
            let mut accepted = false;
            if let Some(tcp) = &self.tcp {
                match tcp.accept() {
                    Ok((s, _)) => {
                        accepted = true;
                        // Replies are small frames (HelloAck, SyncAck);
                        // Nagle + delayed ACK would stall every sync
                        // roundtrip by tens of milliseconds.
                        let _ = s.set_nodelay(true);
                        let shared = Arc::clone(&self.shared);
                        threads.push(std::thread::spawn(move || {
                            if s.set_nonblocking(false).is_ok() {
                                dispatch_conn(s, &shared, stop);
                            }
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => return Err(e),
                }
            }
            #[cfg(unix)]
            if let Some(unix) = &self.unix {
                match unix.accept() {
                    Ok((s, _)) => {
                        accepted = true;
                        let shared = Arc::clone(&self.shared);
                        threads.push(std::thread::spawn(move || {
                            if s.set_nonblocking(false).is_ok() {
                                dispatch_conn(s, &shared, stop);
                            }
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => return Err(e),
                }
            }
            if !accepted {
                std::thread::sleep(poll);
            }
        }
        for t in threads {
            let _ = t.join();
        }
        Ok(())
    }

    /// Installs the signal handlers and runs until SIGINT/SIGTERM.
    pub fn run_until_signalled(&self) -> io::Result<()> {
        shutdown::install_signal_handlers();
        self.run(shutdown::shutdown_flag())
    }
}

/// Routes an accepted connection through the chaos wrapper when a fault
/// plan is configured, otherwise serves it directly.
fn dispatch_conn<S: Conn>(s: S, shared: &Shared, stop: &AtomicBool) {
    if shared.cfg.fault_plan.is_active() {
        serve_conn(ChaosStream::new(s, shared.cfg.fault_plan.clone()), shared, stop);
    } else {
        serve_conn(s, shared, stop);
    }
}

fn send(s: &mut impl Write, frames: &[Frame]) -> Result<(), ProtocolError> {
    for f in frames {
        protocol::write_frame(s, f)?;
    }
    s.flush()?;
    Ok(())
}

/// Drives one connection to completion. Every exit path below either
/// completed the session (`Finish` handled) or wrote its emergency
/// checkpoint first.
fn serve_conn<S: Conn>(mut s: S, shared: &Shared, stop: &AtomicBool) {
    let _ = s.set_read_timeout_ms(Some(shared.cfg.poll_interval_ms.max(1)));
    // Preamble, both directions: we announce first (so clients can
    // fail fast on version skew), then validate theirs.
    if protocol::write_preamble(&mut s).is_err() || s.flush().is_err() {
        return;
    }
    match poll_byte(&mut s, stop, None) {
        Ok(Poll::Byte(first)) => {
            let mut rest = [0u8; 4];
            if Retry(&mut s).read_exact(&mut rest).is_err() {
                return;
            }
            let ok = first == PROTOCOL_MAGIC[0]
                && rest[..3] == PROTOCOL_MAGIC[1..]
                && rest[3] == PROTOCOL_VERSION;
            if !ok {
                let _ = send(
                    &mut s,
                    &[Frame::Error {
                        code: error_code::BAD_FRAME,
                        message: format!(
                            "bad preamble (expected DPSV v{})",
                            dp_types::protocol::PROTOCOL_VERSION
                        ),
                    }],
                );
                return;
            }
        }
        _ => return,
    }

    // First frame must be Hello; the session slot is claimed before the
    // engine is built so the cap bounds real engine memory.
    let hello = match read_one(&mut s, shared, stop) {
        Some(Frame::Hello(h)) => h,
        Some(_) => {
            let _ = send(
                &mut s,
                &[Frame::Error {
                    code: error_code::BAD_FRAME,
                    message: "first frame must be Hello".into(),
                }],
            );
            return;
        }
        None => return,
    };
    let claimed = shared
        .active
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < shared.cfg.max_sessions).then_some(n + 1)
        })
        .is_ok();
    if !claimed {
        // Typed backpressure: the client gets a machine-readable retry
        // hint instead of a flat refusal, and `push_with_retry` honors
        // it — overload shows up as latency, not failure.
        let _ = send(&mut s, &[Frame::Busy { retry_after_ms: shared.cfg.busy_retry_ms }]);
        return;
    }
    let _slot = SessionSlot(Arc::clone(&shared.active));
    // One engine per name: a reconnect that beats the dead connection's
    // teardown would race it over the session's checkpoint store, so it
    // waits its turn behind the same typed backpressure as capacity.
    if !shared.live_names.lock().expect("name registry poisoned").insert(hello.session.clone()) {
        let _ = send(&mut s, &[Frame::Busy { retry_after_ms: shared.cfg.busy_retry_ms }]);
        return;
    }
    let _name = NameLease { shared, name: hello.session.clone() };
    let session_id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    let (mut engine, ack) = match SessionEngine::open(
        &hello,
        session_id,
        shared.cfg.checkpoint_dir.as_deref(),
        shared.cfg.checkpoint_every,
    ) {
        Ok(v) => v,
        Err(e) => {
            let _ = send(&mut s, &[e.to_frame()]);
            return;
        }
    };
    engine.set_reconnects(shared.count_hello(engine.name()));
    if send(&mut s, &[ack]).is_err() {
        checkpoint_on_exit(&mut engine, "client lost before HelloAck");
        return;
    }
    eprintln!(
        "session {} '{}' opened (resume_from={})",
        engine.session_id(),
        engine.name(),
        engine.position()
    );

    loop {
        // A durable session idling past the hibernation deadline is
        // checkpointed and evicted so its slot can serve live traffic.
        let idle_deadline = (shared.cfg.hibernate_after_ms > 0 && engine.durable())
            .then(|| Instant::now() + Duration::from_millis(shared.cfg.hibernate_after_ms));
        match poll_byte(&mut s, stop, idle_deadline) {
            Ok(Poll::Idle) => {
                match engine.hibernate() {
                    Ok(()) => {
                        eprintln!(
                            "session {} '{}' hibernated at event {} (idle)",
                            engine.session_id(),
                            engine.name(),
                            engine.position()
                        );
                        let _ = send(
                            &mut s,
                            &[Frame::Error {
                                code: error_code::HIBERNATED,
                                message: format!(
                                    "session hibernated after {}ms idle; reconnect to resume",
                                    shared.cfg.hibernate_after_ms
                                ),
                            }],
                        );
                    }
                    Err(e) => {
                        checkpoint_on_exit(&mut engine, "hibernate failed");
                        let _ = send(
                            &mut s,
                            &[Frame::Error { code: error_code::ENGINE, message: e.to_string() }],
                        );
                    }
                }
                return;
            }
            Ok(Poll::Shutdown) => {
                checkpoint_on_exit(&mut engine, "shutdown");
                let _ = send(
                    &mut s,
                    &[Frame::Error {
                        code: error_code::SHUTDOWN,
                        message: "server shutting down; session checkpointed".into(),
                    }],
                );
                return;
            }
            Ok(Poll::Eof) => {
                checkpoint_on_exit(&mut engine, "client disconnected");
                return;
            }
            Ok(Poll::Byte(tag)) => {
                let frame = match protocol::resume_frame(
                    &mut Retry(&mut s),
                    tag,
                    shared.cfg.max_frame_bytes,
                ) {
                    Ok(f) => f,
                    Err(e) => {
                        checkpoint_on_exit(&mut engine, "malformed frame");
                        let _ = send(
                            &mut s,
                            &[Frame::Error { code: error_code::BAD_FRAME, message: e.to_string() }],
                        );
                        return;
                    }
                };
                match engine.handle(frame) {
                    Ok(replies) => {
                        let done = engine.finished();
                        if send(&mut s, &replies).is_err() && !done {
                            checkpoint_on_exit(&mut engine, "client lost mid-reply");
                            return;
                        }
                        if done {
                            eprintln!(
                                "session {} '{}' finished ({} events)",
                                engine.session_id(),
                                engine.name(),
                                engine.metrics().events
                            );
                            return;
                        }
                    }
                    Err(e) => {
                        checkpoint_on_exit(&mut engine, "protocol misuse");
                        let _ = send(&mut s, &[e.to_frame()]);
                        return;
                    }
                }
            }
            Err(_) => {
                checkpoint_on_exit(&mut engine, "read error");
                return;
            }
        }
    }
}

fn read_one<S: Conn>(s: &mut S, shared: &Shared, stop: &AtomicBool) -> Option<Frame> {
    match poll_byte(s, stop, None) {
        Ok(Poll::Byte(tag)) => {
            protocol::resume_frame(&mut Retry(s), tag, shared.cfg.max_frame_bytes).ok()
        }
        _ => None,
    }
}

fn checkpoint_on_exit(engine: &mut SessionEngine, why: &str) {
    if engine.finished() {
        return;
    }
    match engine.write_checkpoint() {
        Ok(()) => eprintln!(
            "session {} '{}': {why}; emergency checkpoint at event {}",
            engine.session_id(),
            engine.name(),
            engine.position()
        ),
        Err(e) => eprintln!(
            "session {} '{}': {why}; emergency checkpoint failed: {e}",
            engine.session_id(),
            engine.name()
        ),
    }
}
