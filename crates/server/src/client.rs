//! The client half of the protocol: open a session, stream events,
//! collect the report — what `depprof push` drives over a socket, and
//! what the in-process tests drive over a loopback connection.
//!
//! Two entry points: [`push_events`] runs one session over one
//! connection and fails on the first transport error; [`push_with_retry`]
//! wraps it in a reconnect loop with bounded jittered backoff, resuming
//! from the server's `HelloAck.resume_from` watermark after every
//! disconnect — the client half of the exactly-once contract.

use dp_core::SessionSpec;
use dp_trace::FrameChunker;
use dp_types::protocol::{self, error_code, Frame, Hello, ProtocolError, MAX_FRAME_BYTES};
use dp_types::TraceEvent;
use std::fmt;
use std::io::{Read, Write};
use std::time::Instant;

/// How a push streams its session.
#[derive(Debug, Clone)]
pub struct PushOptions {
    /// Session name (resume identity on the server).
    pub session: String,
    /// Engine the server should run.
    pub spec: SessionSpec,
    /// Ask the server to checkpoint every N events (0 = server default).
    pub checkpoint_every: u64,
    /// Accesses per `Chunk` frame.
    pub chunk_events: usize,
    /// Sleep this long between chunk frames (throttles the stream so
    /// tests can interrupt a push mid-session deterministically).
    pub throttle_ms: u64,
    /// Request the per-session metrics snapshot before finishing.
    pub request_stats: bool,
    /// Send a `Sync` watermark probe every N chunks and wait for its
    /// `SyncAck` (0 = never) — applicative backpressure plus a durable
    /// high-water mark for duplicated-work accounting.
    pub sync_every_chunks: u64,
    /// Watch mode: issue a live-analysis `Query` whenever this many
    /// milliseconds have elapsed since the last one (0 = after every
    /// chunk), print each snapshot to stderr, and always issue one
    /// final query after the last event. `None` disables watching.
    pub watch_ms: Option<u64>,
}

impl Default for PushOptions {
    fn default() -> Self {
        PushOptions {
            session: "default".into(),
            spec: SessionSpec::default(),
            checkpoint_every: 0,
            chunk_events: 512,
            throttle_ms: 0,
            request_stats: false,
            sync_every_chunks: 0,
            watch_ms: None,
        }
    }
}

/// What a completed push produced.
#[derive(Debug, Clone)]
pub struct PushOutcome {
    /// The dependence report the server rendered on `Finish`.
    pub report: String,
    /// Events the server told us to skip (resumed from a checkpoint).
    pub resumed_from: u64,
    /// Events actually sent this connection.
    pub events_sent: u64,
    /// `Stats` payload, when requested.
    pub stats_json: Option<String>,
    /// Live-analysis queries answered this connection (watch mode).
    pub queries: u64,
    /// The last `QueryResult` JSON — in watch mode, the query issued
    /// after the final event, i.e. the complete live report.
    pub last_query_json: Option<String>,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Protocol(ProtocolError),
    /// The server replied with an `Error` frame.
    Server {
        /// [`dp_types::protocol::error_code`] value.
        code: u16,
        /// Server-provided description.
        message: String,
    },
    /// The server refused the session with typed backpressure; retry
    /// after the hinted delay.
    Busy {
        /// The server's suggested reconnect delay, milliseconds.
        retry_after_ms: u64,
    },
    /// The server sent a well-formed frame the client did not expect
    /// in this state.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy (retry after {retry_after_ms}ms)")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected server frame: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl ClientError {
    /// True for failures a reconnect can cure: transport errors, typed
    /// backpressure, and the server-side conditions (`SHUTDOWN`,
    /// `HIBERNATED`) that explicitly invite a resume. Spec rejections
    /// and protocol misuse are fatal — retrying cannot change them.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Protocol(_) | ClientError::Busy { .. } => true,
            ClientError::Server { code, .. } => {
                *code == error_code::SHUTDOWN || *code == error_code::HIBERNATED
            }
            ClientError::Unexpected(_) => false,
        }
    }
}

fn read_reply(conn: &mut impl Read) -> Result<Frame, ClientError> {
    match protocol::read_frame(conn, MAX_FRAME_BYTES)? {
        Some(Frame::Error { code, message }) => Err(ClientError::Server { code, message }),
        Some(Frame::Busy { retry_after_ms }) => Err(ClientError::Busy { retry_after_ms }),
        Some(f) => Ok(f),
        None => Err(ClientError::Protocol(ProtocolError::Wire(dp_types::WireError::Truncated))),
    }
}

/// Like [`read_reply`], but skips stray `SyncAck` frames — a duplicated
/// `Sync` on a chaotic link produces an extra ack that would otherwise
/// land where `Stats` or `Report` is expected.
fn read_reply_skipping_acks(conn: &mut impl Read) -> Result<Frame, ClientError> {
    loop {
        match read_reply(conn)? {
            Frame::SyncAck { .. } => continue,
            f => return Ok(f),
        }
    }
}

/// In-flight progress of one connection attempt, visible to the retry
/// loop even when the attempt dies mid-stream — this is what makes the
/// duplicated-work accounting exact.
#[derive(Debug, Clone, Copy, Default)]
struct PushProgress {
    /// Events written to the socket this attempt.
    events_sent: u64,
    /// `HelloAck.resume_from`, once received.
    resumed_from: Option<u64>,
}

/// Issues one `Query(ALL)` round-trip, skipping stray `SyncAck`s, and
/// prints the snapshot to stderr (the watch stream).
fn watch_query(
    conn: &mut (impl Read + Write),
    session: &str,
    id: u64,
) -> Result<String, ClientError> {
    protocol::write_frame(conn, &Frame::Query { id, kind: protocol::query_kind::ALL })?;
    conn.flush().map_err(ProtocolError::Io)?;
    loop {
        match read_reply(conn)? {
            Frame::QueryResult { json, .. } => {
                eprintln!("[watch {session}] {json}");
                return Ok(json);
            }
            Frame::SyncAck { .. } => continue,
            _ => return Err(ClientError::Unexpected("wanted QueryResult")),
        }
    }
}

/// Runs one full push session over `conn`: preamble, `Hello` carrying
/// `names` (the trace's variable table, in id order), the event stream
/// (skipping whatever the server already profiled), `Finish`, report.
pub fn push_events(
    conn: &mut (impl Read + Write),
    names: Vec<String>,
    events: impl IntoIterator<Item = TraceEvent>,
    opts: &PushOptions,
) -> Result<PushOutcome, ClientError> {
    push_once(conn, names, events, opts, &mut PushProgress::default())
}

fn push_once(
    conn: &mut (impl Read + Write),
    names: Vec<String>,
    events: impl IntoIterator<Item = TraceEvent>,
    opts: &PushOptions,
    progress: &mut PushProgress,
) -> Result<PushOutcome, ClientError> {
    protocol::write_preamble(conn).map_err(ProtocolError::Io)?;
    conn.flush().map_err(ProtocolError::Io)?;
    protocol::read_preamble(conn).map_err(|e| match e {
        // The server answers a bad/oversubscribed connection with an
        // Error frame instead of a preamble; surface that as-is.
        ProtocolError::BadMagic => ProtocolError::BadMagic,
        other => other,
    })?;
    protocol::write_frame(
        conn,
        &Frame::Hello(Hello {
            session: opts.session.clone(),
            spec: opts.spec.encode(),
            checkpoint_every: opts.checkpoint_every,
            names,
        }),
    )?;
    conn.flush().map_err(ProtocolError::Io)?;
    let resumed_from = match read_reply(conn)? {
        Frame::HelloAck { resume_from, .. } => resume_from,
        _ => return Err(ClientError::Unexpected("wanted HelloAck")),
    };
    progress.resumed_from = Some(resumed_from);

    // Positions are absolute: the chunker starts at the server's
    // watermark so every frame says exactly where it belongs, and the
    // server can drop any overlap without double-counting.
    let mut chunker = FrameChunker::with_base(opts.chunk_events.max(1), resumed_from);
    let mut skipped: u64 = 0;
    let mut chunks_since_sync: u64 = 0;
    let mut sync_nonce: u64 = 0;
    let mut queries: u64 = 0;
    let mut last_query_json: Option<String> = None;
    let mut last_watch = Instant::now();
    for ev in events {
        if skipped < resumed_from {
            skipped += 1;
            continue;
        }
        for frame in chunker.push(ev) {
            let is_chunk = matches!(frame, Frame::Chunk { .. });
            protocol::write_frame(conn, &frame)?;
            if is_chunk {
                chunks_since_sync += 1;
                if let Some(ms) = opts.watch_ms {
                    if last_watch.elapsed().as_millis() as u64 >= ms {
                        conn.flush().map_err(ProtocolError::Io)?;
                        queries += 1;
                        last_query_json = Some(watch_query(conn, &opts.session, queries)?);
                        last_watch = Instant::now();
                    }
                }
                if opts.throttle_ms > 0 {
                    conn.flush().map_err(ProtocolError::Io)?;
                    std::thread::sleep(std::time::Duration::from_millis(opts.throttle_ms));
                }
                if opts.sync_every_chunks > 0 && chunks_since_sync >= opts.sync_every_chunks {
                    chunks_since_sync = 0;
                    sync_nonce += 1;
                    protocol::write_frame(conn, &Frame::Sync { nonce: sync_nonce })?;
                    conn.flush().map_err(ProtocolError::Io)?;
                    // Wait for this probe's ack (skipping acks of any
                    // duplicated earlier probes): everything sent so far
                    // is consumed — a durable watermark.
                    loop {
                        match read_reply(conn)? {
                            Frame::SyncAck { nonce, .. } if nonce == sync_nonce => break,
                            Frame::SyncAck { .. } => continue,
                            _ => return Err(ClientError::Unexpected("wanted SyncAck")),
                        }
                    }
                }
            }
        }
        progress.events_sent += 1;
    }
    // Flush the trailing partial chunk and drain the socket buffer
    // before the stats/finish exchange: a buffered or throttled
    // connection must not sit on an unsent chunk at disconnect time.
    if let Some(frame) = chunker.flush() {
        protocol::write_frame(conn, &frame)?;
    }
    conn.flush().map_err(ProtocolError::Io)?;

    // Watch mode always ends with one query after the last event: the
    // complete live report, which must equal the post-hoc passes.
    if opts.watch_ms.is_some() {
        queries += 1;
        last_query_json = Some(watch_query(conn, &opts.session, queries)?);
    }

    let stats_json = if opts.request_stats {
        protocol::write_frame(conn, &Frame::StatsRequest)?;
        conn.flush().map_err(ProtocolError::Io)?;
        match read_reply_skipping_acks(conn)? {
            Frame::Stats { json } => Some(json),
            _ => return Err(ClientError::Unexpected("wanted Stats")),
        }
    } else {
        None
    };

    protocol::write_frame(conn, &Frame::Finish)?;
    conn.flush().map_err(ProtocolError::Io)?;
    let report = match read_reply_skipping_acks(conn)? {
        Frame::Report { text } => text,
        _ => return Err(ClientError::Unexpected("wanted Report")),
    };
    Ok(PushOutcome {
        report,
        resumed_from,
        events_sent: progress.events_sent,
        stats_json,
        queries,
        last_query_json,
    })
}

/// Reconnect policy for [`push_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Connection attempts without watermark progress before giving up
    /// (minimum 1). Any reconnect that finds the server's resume
    /// position advanced refills the budget: a client that moves the
    /// stream forward on every connection keeps going no matter how
    /// often the link drops, while a stalled one stays bounded.
    pub max_attempts: u32,
    /// First backoff delay; doubles per consecutive failure.
    pub base_delay_ms: u64,
    /// Backoff ceiling (also caps a server `Busy` hint).
    pub max_delay_ms: u64,
    /// Jitter seed, so concurrent clients don't reconnect in lockstep.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 5, base_delay_ms: 100, max_delay_ms: 2_000, seed: 0 }
    }
}

/// What [`push_with_retry`] survived on the way to its outcome.
#[derive(Debug, Clone)]
pub struct RetryOutcome {
    /// The successful push.
    pub outcome: PushOutcome,
    /// Connection attempts used (1 = no faults encountered).
    pub attempts: u32,
    /// Reconnects after a mid-stream failure (`attempts - 1`).
    pub reconnects: u32,
    /// `Busy` refusals honored (waited and retried).
    pub busy_waits: u32,
    /// Events sent more than once across attempts — the duplicated
    /// work the positional protocol discarded server-side.
    pub events_resent: u64,
    /// Wall-clock spent between the first failure and final success.
    pub recovery_ms_total: u64,
    /// Watch-mode reconnects that landed in a *fresh* session (the
    /// server held no checkpoint for this name): the live analysis
    /// state restarted from zero. Each occurrence is warned on stderr
    /// rather than silently producing reset counters.
    pub watch_resets: u32,
}

/// Bounded exponential backoff with deterministic downward jitter:
/// `base * 2^attempt`, capped at `max`, minus a seed-derived slice of
/// up to a quarter of the delay. Shared by the service client and the
/// CLI's connect loop.
pub fn backoff_delay_ms(base_ms: u64, max_ms: u64, attempt: u32, seed: u64) -> u64 {
    let exp = base_ms.max(1).saturating_mul(1u64 << attempt.min(20));
    let capped = exp.min(max_ms.max(base_ms.max(1)));
    let jitter = (seed ^ u64::from(attempt + 1).wrapping_mul(7919)) % (capped / 4 + 1);
    capped - jitter
}

/// Pushes `events` until the session completes, surviving disconnects,
/// server shutdowns/hibernations and `Busy` backpressure: each attempt
/// reconnects via `connect`, re-`Hello`s the same session, and resumes
/// from the watermark the server reports. Positional frames make the
/// resend overlap (and any wire-level duplication) land exactly once in
/// the profile.
pub fn push_with_retry<C: Read + Write>(
    mut connect: impl FnMut() -> std::io::Result<C>,
    names: &[String],
    events: &[TraceEvent],
    opts: &PushOptions,
    policy: &RetryPolicy,
) -> Result<RetryOutcome, ClientError> {
    let max_attempts = policy.max_attempts.max(1);
    let mut attempts = 0u32;
    let mut busy_waits = 0u32;
    let mut sent_total = 0u64;
    let mut first_resume: Option<u64> = None;
    let mut first_failure: Option<Instant> = None;
    let mut consecutive_failures = 0u32;
    let mut stalled_attempts = 0u32;
    let mut last_watermark = 0u64;
    let mut watch_resets = 0u32;
    // A reconnect in watch mode that is handed `resume_from: 0` after
    // events were already delivered landed in a FRESH session: the
    // server was not keeping this session durable (no checkpoint dir,
    // or the name's checkpoints were lost), so the incremental analysis
    // state behind the watch stream restarted from zero. Warn instead
    // of letting the watcher silently see counters jump backwards.
    let note_watch_reset = |progress: &PushProgress, attempts: u32, delivered: bool| -> u32 {
        if opts.watch_ms.is_some() && attempts > 1 && delivered && progress.resumed_from == Some(0)
        {
            eprintln!(
                "depprof: warning: session '{}' was not durable on the server; the live \
                 analysis behind --watch restarted from zero after reconnect (serve with \
                 --checkpoint-dir to keep watch state across drops)",
                opts.session
            );
            1
        } else {
            0
        }
    };
    loop {
        attempts += 1;
        let mut progress = PushProgress::default();
        let err = match connect() {
            Ok(mut conn) => {
                match push_once(
                    &mut conn,
                    names.to_vec(),
                    events.iter().cloned(),
                    opts,
                    &mut progress,
                ) {
                    Ok(outcome) => {
                        watch_resets += note_watch_reset(&progress, attempts, sent_total > 0);
                        sent_total += progress.events_sent;
                        let unique =
                            (events.len() as u64).saturating_sub(first_resume.unwrap_or(0));
                        return Ok(RetryOutcome {
                            outcome,
                            attempts,
                            reconnects: attempts - 1,
                            busy_waits,
                            events_resent: sent_total.saturating_sub(unique),
                            recovery_ms_total: first_failure
                                .map(|t| t.elapsed().as_millis() as u64)
                                .unwrap_or(0),
                            watch_resets,
                        });
                    }
                    Err(e) => e,
                }
            }
            Err(e) => ClientError::Protocol(ProtocolError::Io(e)),
        };
        watch_resets += note_watch_reset(&progress, attempts, sent_total > 0);
        sent_total += progress.events_sent;
        if first_resume.is_none() {
            first_resume = progress.resumed_from;
        }
        // The budget bounds attempts WITHOUT progress: a reconnect that
        // finds the watermark advanced proves the previous connection
        // delivered events durably, so the loop is converging.
        let watermark = progress.resumed_from.unwrap_or(0);
        if watermark > last_watermark {
            last_watermark = watermark;
            stalled_attempts = 0;
            consecutive_failures = 0;
        }
        stalled_attempts += 1;
        if !err.is_retryable() || stalled_attempts >= max_attempts {
            return Err(err);
        }
        first_failure.get_or_insert_with(Instant::now);
        let delay = match err {
            ClientError::Busy { retry_after_ms } => {
                busy_waits += 1;
                retry_after_ms.min(policy.max_delay_ms.max(1))
            }
            _ => {
                consecutive_failures += 1;
                backoff_delay_ms(
                    policy.base_delay_ms,
                    policy.max_delay_ms,
                    consecutive_failures - 1,
                    policy.seed,
                )
            }
        };
        std::thread::sleep(std::time::Duration::from_millis(delay));
    }
}
