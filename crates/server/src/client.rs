//! The client half of the protocol: open a session, stream events,
//! collect the report — what `depprof push` drives over a socket, and
//! what the in-process tests drive over a loopback connection.

use dp_core::SessionSpec;
use dp_trace::FrameChunker;
use dp_types::protocol::{self, Frame, Hello, ProtocolError, MAX_FRAME_BYTES};
use dp_types::TraceEvent;
use std::fmt;
use std::io::{Read, Write};

/// How a push streams its session.
#[derive(Debug, Clone)]
pub struct PushOptions {
    /// Session name (resume identity on the server).
    pub session: String,
    /// Engine the server should run.
    pub spec: SessionSpec,
    /// Ask the server to checkpoint every N events (0 = server default).
    pub checkpoint_every: u64,
    /// Accesses per `Chunk` frame.
    pub chunk_events: usize,
    /// Sleep this long between chunk frames (throttles the stream so
    /// tests can interrupt a push mid-session deterministically).
    pub throttle_ms: u64,
    /// Request the per-session metrics snapshot before finishing.
    pub request_stats: bool,
}

impl Default for PushOptions {
    fn default() -> Self {
        PushOptions {
            session: "default".into(),
            spec: SessionSpec::default(),
            checkpoint_every: 0,
            chunk_events: 512,
            throttle_ms: 0,
            request_stats: false,
        }
    }
}

/// What a completed push produced.
#[derive(Debug, Clone)]
pub struct PushOutcome {
    /// The dependence report the server rendered on `Finish`.
    pub report: String,
    /// Events the server told us to skip (resumed from a checkpoint).
    pub resumed_from: u64,
    /// Events actually sent this connection.
    pub events_sent: u64,
    /// `Stats` payload, when requested.
    pub stats_json: Option<String>,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Protocol(ProtocolError),
    /// The server replied with an `Error` frame.
    Server {
        /// [`dp_types::protocol::error_code`] value.
        code: u16,
        /// Server-provided description.
        message: String,
    },
    /// The server sent a well-formed frame the client did not expect
    /// in this state.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected server frame: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

fn read_reply(conn: &mut impl Read) -> Result<Frame, ClientError> {
    match protocol::read_frame(conn, MAX_FRAME_BYTES)? {
        Some(Frame::Error { code, message }) => Err(ClientError::Server { code, message }),
        Some(f) => Ok(f),
        None => Err(ClientError::Protocol(ProtocolError::Wire(dp_types::WireError::Truncated))),
    }
}

/// Runs one full push session over `conn`: preamble, `Hello` carrying
/// `names` (the trace's variable table, in id order), the event stream
/// (skipping whatever the server already profiled), `Finish`, report.
pub fn push_events(
    conn: &mut (impl Read + Write),
    names: Vec<String>,
    events: impl IntoIterator<Item = TraceEvent>,
    opts: &PushOptions,
) -> Result<PushOutcome, ClientError> {
    protocol::write_preamble(conn).map_err(ProtocolError::Io)?;
    conn.flush().map_err(ProtocolError::Io)?;
    protocol::read_preamble(conn).map_err(|e| match e {
        // The server answers a bad/oversubscribed connection with an
        // Error frame instead of a preamble; surface that as-is.
        ProtocolError::BadMagic => ProtocolError::BadMagic,
        other => other,
    })?;
    protocol::write_frame(
        conn,
        &Frame::Hello(Hello {
            session: opts.session.clone(),
            spec: opts.spec.encode(),
            checkpoint_every: opts.checkpoint_every,
            names,
        }),
    )?;
    conn.flush().map_err(ProtocolError::Io)?;
    let resumed_from = match read_reply(conn)? {
        Frame::HelloAck { resume_from, .. } => resume_from,
        _ => return Err(ClientError::Unexpected("wanted HelloAck")),
    };

    let mut chunker = FrameChunker::new(opts.chunk_events.max(1));
    let mut events_sent: u64 = 0;
    let mut skipped: u64 = 0;
    for ev in events {
        if skipped < resumed_from {
            skipped += 1;
            continue;
        }
        for frame in chunker.push(ev) {
            protocol::write_frame(conn, &frame)?;
            if opts.throttle_ms > 0 && matches!(frame, Frame::Chunk(_)) {
                conn.flush().map_err(ProtocolError::Io)?;
                std::thread::sleep(std::time::Duration::from_millis(opts.throttle_ms));
            }
        }
        events_sent += 1;
    }
    if let Some(frame) = chunker.flush() {
        protocol::write_frame(conn, &frame)?;
    }

    let stats_json = if opts.request_stats {
        protocol::write_frame(conn, &Frame::StatsRequest)?;
        conn.flush().map_err(ProtocolError::Io)?;
        match read_reply(conn)? {
            Frame::Stats { json } => Some(json),
            _ => return Err(ClientError::Unexpected("wanted Stats")),
        }
    } else {
        None
    };

    protocol::write_frame(conn, &Frame::Finish)?;
    conn.flush().map_err(ProtocolError::Io)?;
    let report = match read_reply(conn)? {
        Frame::Report { text } => text,
        _ => return Err(ClientError::Unexpected("wanted Report")),
    };
    Ok(PushOutcome { report, resumed_from, events_sent, stats_json })
}
