//! The socket-free session state machine: frames in, frames out.
//!
//! One [`SessionEngine`] owns one profiling engine
//! ([`ProfileSession`]) and the session's durability state. Both
//! socket front-ends (TCP and Unix) and the in-process equivalence
//! tests drive it the same way: [`SessionEngine::open`] on the `Hello`
//! frame, [`SessionEngine::handle`] for everything after.

use dp_analysis::incremental::json_string;
use dp_analysis::OnlineAnalysis;
use dp_core::{report, CheckpointStore, ProfileResult, ProfileSession, SessionSpec};
use dp_metrics::SessionMetrics;
use dp_types::protocol::{error_code, query_kind, Frame, Hello};
use dp_types::{Interner, TraceEvent};
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a session could not be opened or continued. The server converts
/// these into `Error` frames; in-process drivers get them typed.
#[derive(Debug)]
pub enum SessionError {
    /// The `Hello` frame's engine spec did not decode.
    BadSpec(dp_types::WireError),
    /// A frame arrived that the session's state does not allow (a
    /// second `Hello`, events after `Finish`, ...).
    OutOfOrder(&'static str),
    /// Checkpoint store I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::BadSpec(e) => write!(f, "session spec is malformed: {e}"),
            SessionError::OutOfOrder(what) => write!(f, "frame out of protocol order: {what}"),
            SessionError::Io(e) => write!(f, "session checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl SessionError {
    /// The `Error` frame this failure maps to on the wire.
    pub fn to_frame(&self) -> Frame {
        Frame::Error { code: error_code::BAD_FRAME, message: self.to_string() }
    }
}

/// Restricts a session name to filesystem-safe characters for its
/// checkpoint subdirectory (anything else becomes `_`).
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    if s.is_empty() {
        s.push('_');
    }
    s.truncate(64);
    s
}

/// One client session: engine + interner + checkpoint state + counters.
pub struct SessionEngine {
    name: String,
    session_id: u64,
    session: Option<ProfileSession>,
    spec: SessionSpec,
    interner: Interner,
    store: Option<CheckpointStore>,
    store_dir: Option<PathBuf>,
    checkpoint_every: u64,
    generation: u64,
    /// Absolute stream position: events profiled across all incarnations
    /// of this session (restored + fed).
    events_fed: u64,
    metrics: SessionMetrics,
    /// Live analysis state, folded from engine deltas. `None` until the
    /// first `Query` frame — sessions that never query carry no delta
    /// tracking and pay nothing for the subsystem.
    online: Option<OnlineAnalysis>,
    finished: bool,
}

impl SessionEngine {
    /// Opens a session from its `Hello` frame. When `checkpoint_base`
    /// is set and holds a valid checkpoint under this session's name,
    /// the engine is rebuilt from it and the returned `HelloAck` tells
    /// the client how many events to skip; otherwise a fresh engine is
    /// built from the `Hello`'s spec.
    pub fn open(
        hello: &Hello,
        session_id: u64,
        checkpoint_base: Option<&Path>,
        default_checkpoint_every: u64,
    ) -> Result<(SessionEngine, Frame), SessionError> {
        let mut interner = Interner::new();
        for n in &hello.names {
            interner.intern(n);
        }
        let checkpoint_every = if hello.checkpoint_every > 0 {
            hello.checkpoint_every
        } else {
            default_checkpoint_every
        };
        let store_dir = checkpoint_base.map(|b| b.join(sanitize(&hello.session)));

        // A valid checkpoint under this session's name wins over the
        // Hello's spec: the resumed engine must match the state it
        // restores, and the checkpoint's CONFIG section records exactly
        // that spec.
        let resumed = store_dir.as_ref().and_then(|dir| {
            let data = CheckpointStore::open(dir.clone()).load_latest().ok()?;
            let spec = SessionSpec::decode(&data.config).ok()?;
            let session = spec.resume(&data).ok()?;
            Some((spec, session, data.generation, data.records_read))
        });
        let rehydrated = resumed.is_some();
        let (spec, session, generation, events_fed) = match resumed {
            Some((spec, session, generation, records_read)) => {
                (spec, session, generation + 1, records_read)
            }
            None => {
                let spec = SessionSpec::decode(&hello.spec).map_err(SessionError::BadSpec)?;
                (spec, spec.build(), 1, 0)
            }
        };
        let store = match (&store_dir, checkpoint_every > 0 || events_fed > 0) {
            (Some(dir), true) => Some(CheckpointStore::create(dir).map_err(SessionError::Io)?),
            _ => None,
        };
        let engine = SessionEngine {
            name: hello.session.clone(),
            session_id,
            session: Some(session),
            spec,
            interner,
            store,
            store_dir,
            checkpoint_every,
            generation,
            events_fed,
            metrics: SessionMetrics {
                resumed_from: events_fed,
                rehydrated: rehydrated as u64,
                ..SessionMetrics::default()
            },
            online: None,
            finished: false,
        };
        let ack = Frame::HelloAck { session_id, resume_from: engine.events_fed };
        Ok((engine, ack))
    }

    /// Handles one post-`Hello` frame, returning the reply frames to
    /// send (possibly none).
    pub fn handle(&mut self, frame: Frame) -> Result<Vec<Frame>, SessionError> {
        if self.finished {
            return Err(SessionError::OutOfOrder("frame after Finish"));
        }
        self.metrics.frames += 1;
        match frame {
            Frame::Hello(_) => Err(SessionError::OutOfOrder("second Hello on one connection")),
            Frame::HelloAck { .. }
            | Frame::Stats { .. }
            | Frame::Report { .. }
            | Frame::SyncAck { .. }
            | Frame::Busy { .. }
            | Frame::QueryResult { .. } => {
                Err(SessionError::OutOfOrder("server-to-client frame sent by client"))
            }
            Frame::Error { .. } => Err(SessionError::OutOfOrder("Error frame sent by client")),
            Frame::Chunk { base, accesses } => {
                self.metrics.chunks += 1;
                self.metrics.bytes_in +=
                    (accesses.len() * dp_types::protocol::ACCESS_WIRE_BYTES) as u64;
                if base > self.events_fed {
                    return Err(SessionError::OutOfOrder("chunk beyond the stream watermark"));
                }
                // Everything below the watermark was already profiled
                // (resend overlap after a reconnect, or a duplicated
                // frame): skip it exactly, feed only the new suffix.
                let skip = (self.events_fed - base).min(accesses.len() as u64) as usize;
                self.metrics.events_skipped_on_resume += skip as u64;
                for a in accesses.into_iter().skip(skip) {
                    self.feed(TraceEvent::Access(a))?;
                }
                Ok(Vec::new())
            }
            Frame::LoopEvent { seq, ev } => {
                if seq > self.events_fed {
                    return Err(SessionError::OutOfOrder("event beyond the stream watermark"));
                }
                if seq < self.events_fed {
                    self.metrics.events_skipped_on_resume += 1;
                    return Ok(Vec::new());
                }
                self.feed(ev)?;
                Ok(Vec::new())
            }
            Frame::Sync { nonce } => {
                // Handling is synchronous: every earlier frame on this
                // connection has been fed by the time we reply, so the
                // acked position is a durable watermark.
                self.metrics.syncs += 1;
                Ok(vec![Frame::SyncAck { nonce, position: self.events_fed }])
            }
            Frame::StatsRequest => Ok(vec![Frame::Stats { json: self.metrics.to_json() }]),
            Frame::Query { id, kind } => {
                self.metrics.queries += 1;
                let json = self.answer_query(kind);
                Ok(vec![Frame::QueryResult { id, kind, json }])
            }
            Frame::Finish => {
                self.finished = true;
                let session = self.session.take().expect("unfinished session has an engine");
                let result = session.finish();
                let text = report::render(&result, &self.interner, false);
                // The session completed: its checkpoints are spent, and
                // a future session under this name starts fresh.
                if let Some(dir) = &self.store_dir {
                    let _ = std::fs::remove_dir_all(dir);
                }
                Ok(vec![Frame::Report { text }])
            }
        }
    }

    fn feed(&mut self, ev: TraceEvent) -> Result<(), SessionError> {
        let session = self.session.as_mut().expect("unfinished session has an engine");
        session.on_event(ev);
        self.metrics.events += 1;
        self.events_fed += 1;
        if self.checkpoint_every > 0 && self.events_fed.is_multiple_of(self.checkpoint_every) {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    /// Answers a `Query` frame from incremental state. The first query
    /// of a session (or of a rehydrated incarnation — delta tracking is
    /// not persisted) enables delta tracking on the engine; the
    /// catch-up delta then ships the full history, so late enabling
    /// loses nothing. Unknown selector values answer like
    /// [`query_kind::ALL`], echoing the kind byte.
    fn answer_query(&mut self, kind: u8) -> String {
        let session = self.session.as_mut().expect("unfinished session has an engine");
        if !session.online_enabled() {
            session.enable_online();
            self.online = Some(OnlineAnalysis::new());
        }
        let online = self.online.get_or_insert_with(OnlineAnalysis::new);
        for delta in session.collect_deltas() {
            online.fold(&delta);
        }
        let report = online.report();
        let (loops, comm, races) = match kind {
            query_kind::LOOPS => (true, false, false),
            query_kind::COMM => (false, true, false),
            query_kind::RACES => (false, false, true),
            _ => (true, true, true),
        };
        let body = report.to_json(&self.interner, loops, comm, races);
        format!(
            "{{\"session\":{},\"position\":{},\"deltas\":{},{}",
            json_string(&self.name),
            self.events_fed,
            online.deltas_folded(),
            &body[1..]
        )
    }

    /// Writes a checkpoint at the current stream position (periodic or
    /// emergency). A no-op without a checkpoint store or after finish.
    pub fn write_checkpoint(&mut self) -> Result<(), SessionError> {
        let (Some(store), Some(session)) = (&self.store, self.session.as_mut()) else {
            return Ok(());
        };
        let data = session
            .checkpoint_data(self.generation, self.events_fed, self.spec.encode())
            .map_err(|e| SessionError::Io(std::io::Error::other(format!("cannot quiesce: {e}"))))?;
        store.write(&data).map_err(SessionError::Io)?;
        self.generation += 1;
        self.metrics.checkpoint_generations += 1;
        Ok(())
    }

    /// Hibernates an idle session: checkpoint the engine to the store
    /// and release it, so `max_sessions` bounds *live* engines rather
    /// than named sessions. A later `Hello` under the same name
    /// rehydrates from the checkpoint and resumes exactly. Only durable
    /// sessions (a checkpoint base was configured) can hibernate.
    pub fn hibernate(&mut self) -> Result<(), SessionError> {
        if self.finished {
            return Err(SessionError::OutOfOrder("hibernate after Finish"));
        }
        if self.store.is_none() {
            // A session below its first periodic checkpoint has no store
            // yet — create it on demand so idle eviction still works.
            let dir = self
                .store_dir
                .as_ref()
                .ok_or(SessionError::OutOfOrder("hibernate without a checkpoint dir"))?;
            self.store = Some(CheckpointStore::create(dir).map_err(SessionError::Io)?);
        }
        self.write_checkpoint()?;
        self.metrics.hibernated += 1;
        self.session = None;
        self.finished = true;
        Ok(())
    }

    /// True when the session can survive engine eviction (a checkpoint
    /// directory was configured for it).
    pub fn durable(&self) -> bool {
        self.store_dir.is_some()
    }

    /// Records how many times a client re-`Hello`ed into this session
    /// name (tracked by the server across connections).
    pub fn set_reconnects(&mut self, reconnects: u64) {
        self.metrics.reconnects = reconnects;
    }

    /// Finishes the engine in-process and returns the raw result —
    /// the handle the equivalence tests compare dependence-for-
    /// dependence against an offline replay. The session's service
    /// resilience counters are stamped into the result's snapshot.
    pub fn finish_result(mut self) -> Option<ProfileResult> {
        self.finished = true;
        let m = self.metrics;
        self.session.take().map(|s| {
            let mut result = s.finish();
            result.metrics.service.reconnects = m.reconnects;
            result.metrics.service.hibernated = m.hibernated;
            result.metrics.service.rehydrated = m.rehydrated;
            result.metrics.service.events_skipped_on_resume = m.events_skipped_on_resume;
            result
        })
    }

    /// The session's name as the client sent it.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Absolute number of events profiled (restored + fed).
    pub fn position(&self) -> u64 {
        self.events_fed
    }

    /// True once `Finish` was handled.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The session's counters.
    pub fn metrics(&self) -> &SessionMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_types::loc::loc;
    use dp_types::MemAccess;

    fn hello(session: &str, checkpoint_every: u64) -> Hello {
        Hello {
            session: session.into(),
            spec: SessionSpec { slots: 1 << 12, ..SessionSpec::default() }.encode(),
            checkpoint_every,
            names: vec!["*".into(), "x".into()],
        }
    }

    fn accesses(range: std::ops::Range<u64>) -> Vec<MemAccess> {
        range
            .map(|i| {
                let a = 0x100 + (i % 9) * 8;
                if i % 4 == 0 {
                    MemAccess::write(a, i + 1, loc(1, 1), 1, 0)
                } else {
                    MemAccess::read(a, i + 1, loc(1, 2), 1, 0)
                }
            })
            .collect()
    }

    #[test]
    fn session_profiles_and_reports() {
        let (mut s, ack) = SessionEngine::open(&hello("t", 0), 1, None, 0).unwrap();
        assert_eq!(ack, Frame::HelloAck { session_id: 1, resume_from: 0 });
        assert!(s.handle(Frame::Chunk { base: 0, accesses: accesses(0..50) }).unwrap().is_empty());
        let replies = s.handle(Frame::Sync { nonce: 99 }).unwrap();
        assert_eq!(replies, vec![Frame::SyncAck { nonce: 99, position: 50 }]);
        let replies = s.handle(Frame::StatsRequest).unwrap();
        assert!(matches!(&replies[..], [Frame::Stats { json }] if json.contains("\"events\": 50")));
        let replies = s.handle(Frame::Finish).unwrap();
        let [Frame::Report { text }] = &replies[..] else { panic!("expected Report") };
        assert!(text.contains("RAW"), "report should hold dependences:\n{text}");
        assert!(s.handle(Frame::Sync { nonce: 1 }).is_err(), "frames after Finish are rejected");
    }

    #[test]
    fn interrupted_session_resumes_from_checkpoint() {
        let base = std::env::temp_dir().join(format!("dpsv-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let evs = accesses(0..100);

        // Reference: one uninterrupted session.
        let (mut all, _) = SessionEngine::open(&hello("ref", 0), 1, None, 0).unwrap();
        all.handle(Frame::Chunk { base: 0, accesses: evs.clone() }).unwrap();
        let reference = all.finish_result().unwrap();

        // Interrupted: feed 60, checkpoint (emergency), drop the engine.
        let (mut first, ack) = SessionEngine::open(&hello("job", 10), 2, Some(&base), 0).unwrap();
        assert_eq!(ack, Frame::HelloAck { session_id: 2, resume_from: 0 });
        first.handle(Frame::Chunk { base: 0, accesses: evs[..60].to_vec() }).unwrap();
        first.write_checkpoint().unwrap();
        drop(first);

        // Reconnect under the same name: resume position is handed back,
        // and an overlapping resend (a client that restarted from 40)
        // dedupes positionally instead of double-counting.
        let (mut second, ack) = SessionEngine::open(&hello("job", 10), 3, Some(&base), 0).unwrap();
        assert_eq!(ack, Frame::HelloAck { session_id: 3, resume_from: 60 });
        assert_eq!(second.metrics().resumed_from, 60);
        assert_eq!(second.metrics().rehydrated, 1);
        second.handle(Frame::Chunk { base: 40, accesses: evs[40..].to_vec() }).unwrap();
        assert_eq!(second.metrics().events_skipped_on_resume, 20);
        assert_eq!(second.position(), 100);
        let resumed = second.finish_result().unwrap();
        assert_eq!(resumed.metrics.service.events_skipped_on_resume, 20);

        assert_eq!(reference.stats.accesses, resumed.stats.accesses);
        let deps = |r: &ProfileResult| {
            let mut v: Vec<String> =
                r.deps.dependences().map(|(d, val)| format!("{d:?}={val:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(deps(&reference), deps(&resumed));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn finish_clears_the_checkpoint_dir() {
        let base = std::env::temp_dir().join(format!("dpsv-engine-clear-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let (mut s, _) = SessionEngine::open(&hello("a b/c", 5), 1, Some(&base), 0).unwrap();
        s.handle(Frame::Chunk { base: 0, accesses: accesses(0..20) }).unwrap();
        assert!(base.join("a_b_c").exists(), "sanitized checkpoint dir");
        s.handle(Frame::Finish).unwrap();
        assert!(!base.join("a_b_c").exists(), "spent checkpoints are removed");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn duplicate_and_gap_frames_are_handled_positionally() {
        let evs = accesses(0..30);
        let (mut s, _) = SessionEngine::open(&hello("dup", 0), 1, None, 0).unwrap();
        s.handle(Frame::Chunk { base: 0, accesses: evs[..20].to_vec() }).unwrap();
        // Exact duplicate delivery of the last frame: fully skipped.
        s.handle(Frame::Chunk { base: 0, accesses: evs[..20].to_vec() }).unwrap();
        assert_eq!(s.position(), 20);
        assert_eq!(s.metrics().events_skipped_on_resume, 20);
        // A gap is a protocol violation, not silent data loss.
        let err = s.handle(Frame::Chunk { base: 25, accesses: evs[25..].to_vec() }).unwrap_err();
        assert!(matches!(err, SessionError::OutOfOrder(_)));
        let err = s
            .handle(Frame::LoopEvent {
                seq: 25,
                ev: TraceEvent::CallBegin { func: 1, thread: 0, ts: 1 },
            })
            .unwrap_err();
        assert!(matches!(err, SessionError::OutOfOrder(_)));
    }

    #[test]
    fn hibernated_session_rehydrates_exactly() {
        let base = std::env::temp_dir().join(format!("dpsv-engine-hib-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let evs = accesses(0..80);

        let (mut all, _) = SessionEngine::open(&hello("ref", 0), 1, None, 0).unwrap();
        all.handle(Frame::Chunk { base: 0, accesses: evs.clone() }).unwrap();
        let reference = all.finish_result().unwrap();

        // Hibernate mid-stream: even without a periodic checkpoint
        // interval the store is created on demand.
        let (mut idle, _) = SessionEngine::open(&hello("nap", 0), 2, Some(&base), 0).unwrap();
        assert!(idle.durable());
        idle.handle(Frame::Chunk { base: 0, accesses: evs[..50].to_vec() }).unwrap();
        idle.hibernate().unwrap();
        assert_eq!(idle.metrics().hibernated, 1);
        drop(idle);

        let (mut woken, ack) = SessionEngine::open(&hello("nap", 0), 3, Some(&base), 0).unwrap();
        assert_eq!(ack, Frame::HelloAck { session_id: 3, resume_from: 50 });
        assert_eq!(woken.metrics().rehydrated, 1);
        woken.handle(Frame::Chunk { base: 50, accesses: evs[50..].to_vec() }).unwrap();
        let resumed = woken.finish_result().unwrap();
        assert_eq!(reference.stats.accesses, resumed.stats.accesses);
        let _ = std::fs::remove_dir_all(&base);

        // Sessions without a checkpoint dir cannot hibernate.
        let (mut ephemeral, _) = SessionEngine::open(&hello("e", 0), 4, None, 0).unwrap();
        assert!(!ephemeral.durable());
        assert!(ephemeral.hibernate().is_err());
    }

    #[test]
    fn queries_answer_from_incremental_state() {
        // The live-analysis bar: a Query after the last chunk must match
        // the post-hoc passes over the finished result — for the serial
        // engine and the parallel pipeline alike.
        let specs = [
            SessionSpec { slots: 1 << 12, ..SessionSpec::default() },
            SessionSpec { parallel: true, workers: 2, slots: 1 << 12, ..SessionSpec::default() },
        ];
        for spec in specs {
            let h = Hello {
                session: "live".into(),
                spec: spec.encode(),
                checkpoint_every: 0,
                names: vec!["*".into(), "x".into()],
            };
            let (mut s, _) = SessionEngine::open(&h, 1, None, 0).unwrap();
            s.handle(Frame::Chunk { base: 0, accesses: accesses(0..30) }).unwrap();
            // Mid-stream query: answered without stalling or finishing.
            let replies =
                s.handle(Frame::Query { id: 5, kind: dp_types::protocol::query_kind::ALL });
            let [Frame::QueryResult { id: 5, json, .. }] = &replies.unwrap()[..] else {
                panic!("expected QueryResult")
            };
            assert!(json.contains("\"position\":30"), "{json}");
            assert!(json.contains("\"loops\":"), "{json}");
            s.handle(Frame::Chunk { base: 30, accesses: accesses(30..60) }).unwrap();
            // Section-selected query.
            let replies =
                s.handle(Frame::Query { id: 6, kind: dp_types::protocol::query_kind::COMM });
            let [Frame::QueryResult { kind, json, .. }] = &replies.unwrap()[..] else {
                panic!("expected QueryResult")
            };
            assert_eq!(*kind, dp_types::protocol::query_kind::COMM);
            assert!(json.contains("\"comm\":") && !json.contains("\"loops\":"), "{json}");
            // Final query after the last chunk: full report.
            let replies =
                s.handle(Frame::Query { id: 7, kind: dp_types::protocol::query_kind::ALL });
            let [Frame::QueryResult { json: final_json, .. }] = &replies.unwrap()[..] else {
                panic!("expected QueryResult")
            };
            assert_eq!(s.metrics().queries, 3);
            let result = s.finish_result().unwrap();
            let mut interner = Interner::new();
            interner.intern("*");
            interner.intern("x");
            let expected =
                dp_analysis::posthoc_report(&result).to_json(&interner, true, true, true);
            assert!(
                final_json.ends_with(&expected[1..]),
                "incremental answer diverged from post-hoc passes:\n got {final_json}\nwant \
                 ...{expected}"
            );
        }
    }

    #[test]
    fn bad_spec_and_out_of_order_are_typed() {
        let mut h = hello("x", 0);
        h.spec = vec![9, 9];
        assert!(matches!(SessionEngine::open(&h, 1, None, 0), Err(SessionError::BadSpec(_))));
        let (mut s, _) = SessionEngine::open(&hello("x", 0), 1, None, 0).unwrap();
        let err = s.handle(Frame::Hello(hello("x", 0))).unwrap_err();
        assert!(matches!(err, SessionError::OutOfOrder(_)));
        assert!(matches!(err.to_frame(), Frame::Error { code, .. }
            if code == error_code::BAD_FRAME));
    }
}
