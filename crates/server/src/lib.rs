//! `dp-server` — the profiler as a long-lived network service.
//!
//! The paper's pipeline (Section IV, Figure 2) decouples event
//! production from dependence analysis; this crate carries that
//! decoupling across a socket. A [`Server`] listens on TCP (and/or a
//! Unix socket), speaks the `DPSV` v1 frame protocol
//! ([`dp_types::protocol`]), and runs one profiling engine per client
//! session:
//!
//! - **Session manager** — each connection's `Hello` frame names a
//!   session and carries a [`SessionSpec`](dp_core::SessionSpec); the
//!   server builds the matching engine (serial in-line or the parallel
//!   pipeline) and feeds it the streamed events. A global concurrent-
//!   session cap bounds server load; clients past the cap receive a
//!   typed `Error` frame instead of a hang.
//! - **Durability** — long-running sessions are checkpointed through
//!   the two-generation [`CheckpointStore`](dp_core::CheckpointStore);
//!   a killed server resumes an in-flight session when its client
//!   reconnects under the same name, handing back the resume position
//!   in `HelloAck` so the client skips what was already profiled.
//! - **Graceful shutdown** — a SIGINT/SIGTERM sets a process-wide flag
//!   ([`shutdown`]); the accept loop and every connection thread
//!   observe it between frames, write a final emergency checkpoint per
//!   in-flight session, and notify clients with `Error{SHUTDOWN}`.
//! - **Backpressure** — frames are bounded (`max_frame_bytes`) and the
//!   server reads a connection only as fast as its engine consumes, so
//!   a `Block`-policy session exerts natural TCP backpressure while a
//!   `Drop`-policy session sheds load inside the engine with the PR 2
//!   overflow accounting.
//!
//! - **Resilience** — the client side ships a [`push_with_retry`] loop
//!   that survives mid-stream disconnects: reconnect with bounded
//!   jittered backoff, re-`Hello` the same session, and skip the prefix
//!   the server reports in `HelloAck.resume_from`. Frames are
//!   positional, so resend overlap and duplicated delivery dedupe
//!   exactly — at-least-once transport, exactly-once profiling. A
//!   seeded [`ChaosStream`] fault injector ([`NetFaultPlan`]) proves
//!   the path under adversarial networks, and idle durable sessions
//!   hibernate to the checkpoint store so `max_sessions` bounds live
//!   engines rather than named sessions.
//!
//! The session state machine itself ([`SessionEngine`]) is socket-free:
//! it maps incoming frames to reply frames, which is what the
//! equivalence tests drive directly and both socket front-ends share.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod engine;
pub mod server;
pub mod shutdown;

pub use chaos::{ChaosStream, NetFaultPlan};
pub use client::{
    backoff_delay_ms, push_events, push_with_retry, ClientError, PushOptions, PushOutcome,
    RetryOutcome, RetryPolicy,
};
pub use engine::{SessionEngine, SessionError};
pub use server::{Server, ServerConfig};
pub use shutdown::{
    install_signal_handlers, request_shutdown, shutdown_flag, SIGINT_EXIT, SIGTERM_EXIT,
};
