//! Accuracy of profiled dependences (Section VI-A, Table I).
//!
//! "To measure the false positive rate (FPR) and the false negative rate
//! (FNR) of the profiled dependences, we implemented a 'perfect
//! signature' ... We use the perfect signature as the baseline."
//!
//! A dependence is identified by `(type, sink, source, variable)`; INIT
//! markers are not dependences and are excluded. FPR is the fraction of
//! profiled dependences that are not in the baseline; FNR is the fraction
//! of baseline dependences the profiler missed.

use dp_core::ProfileResult;
use dp_types::{DepType, FxHashSet, SourceLoc, ThreadId, VarId};

type Ident = (DepType, SourceLoc, ThreadId, SourceLoc, ThreadId, VarId);

/// FPR/FNR comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Distinct dependences in the baseline (the "# dependences" column).
    pub baseline: usize,
    /// Distinct dependences reported by the profiler under test.
    pub profiled: usize,
    /// Reported but not real.
    pub false_positives: usize,
    /// Real but not reported.
    pub false_negatives: usize,
}

impl Accuracy {
    /// False positive rate in percent (of reported dependences), as in
    /// Table I.
    pub fn fpr(&self) -> f64 {
        if self.profiled == 0 {
            0.0
        } else {
            100.0 * self.false_positives as f64 / self.profiled as f64
        }
    }

    /// False negative rate in percent (of baseline dependences).
    pub fn fnr(&self) -> f64 {
        if self.baseline == 0 {
            0.0
        } else {
            100.0 * self.false_negatives as f64 / self.baseline as f64
        }
    }
}

fn ident_set(r: &ProfileResult) -> FxHashSet<Ident> {
    r.deps
        .dependences()
        .filter(|(d, _)| d.edge.dtype != DepType::Init)
        .map(|(d, _)| d.identity())
        .collect()
}

/// Compares a profiled result against the perfect-signature baseline.
pub fn compare(baseline: &ProfileResult, profiled: &ProfileResult) -> Accuracy {
    let base = ident_set(baseline);
    let prof = ident_set(profiled);
    let false_positives = prof.difference(&base).count();
    let false_negatives = base.difference(&prof).count();
    Accuracy { baseline: base.len(), profiled: prof.len(), false_positives, false_negatives }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::SequentialProfiler;
    use dp_sig::{ExtendedSlot, Signature};
    use dp_types::{loc::loc, MemAccess, TraceEvent};

    /// Write every address, then read every address: collisions in a
    /// small signature corrupt the remembered write lines, producing both
    /// false positives (wrong source) and false negatives (true pair
    /// missing).
    fn stream(n: u64) -> Vec<TraceEvent> {
        let mut evs = Vec::new();
        let mut ts = 0;
        for i in 0..n {
            ts += 1;
            evs.push(TraceEvent::Access(MemAccess::write(
                0x1000 + i * 8,
                ts,
                loc(1, i as u32 + 1),
                1,
                0,
            )));
        }
        for i in 0..n {
            ts += 1;
            evs.push(TraceEvent::Access(MemAccess::read(
                0x1000 + i * 8,
                ts,
                loc(1, i as u32 + 10_000),
                1,
                0,
            )));
        }
        evs
    }

    fn run<S: dp_sig::AccessStore>(
        mut p: SequentialProfiler<S>,
        evs: &[TraceEvent],
    ) -> ProfileResult {
        for e in evs {
            p.on_event(e);
        }
        p.finish()
    }

    #[test]
    fn perfect_vs_perfect_is_exact() {
        let evs = stream(500);
        let a = run(SequentialProfiler::perfect(), &evs);
        let b = run(SequentialProfiler::perfect(), &evs);
        let acc = compare(&a, &b);
        assert_eq!(acc.fpr(), 0.0);
        assert_eq!(acc.fnr(), 0.0);
        assert!(acc.baseline > 0);
    }

    #[test]
    fn large_signature_is_near_exact_small_is_not() {
        let evs = stream(2000);
        let base = run(SequentialProfiler::perfect(), &evs);
        let big = run(
            SequentialProfiler::with_stores(
                Signature::<ExtendedSlot>::new(1 << 20),
                Signature::<ExtendedSlot>::new(1 << 20),
            ),
            &evs,
        );
        let small = run(
            SequentialProfiler::with_stores(
                Signature::<ExtendedSlot>::new(64),
                Signature::<ExtendedSlot>::new(64),
            ),
            &evs,
        );
        let acc_big = compare(&base, &big);
        let acc_small = compare(&base, &small);
        assert!(acc_big.fpr() < 1.0, "big fpr {}", acc_big.fpr());
        assert!(acc_big.fnr() < 1.0, "big fnr {}", acc_big.fnr());
        assert!(
            acc_small.fpr() > acc_big.fpr() && acc_small.fnr() > acc_big.fnr(),
            "small {} {} vs big {} {}",
            acc_small.fpr(),
            acc_small.fnr(),
            acc_big.fpr(),
            acc_big.fnr()
        );
    }

    #[test]
    fn init_records_do_not_count() {
        let mut p = SequentialProfiler::perfect();
        p.on_event(&TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), 1, 0)));
        let r = p.finish();
        let acc = compare(&r, &r);
        assert_eq!(acc.baseline, 0);
    }
}
