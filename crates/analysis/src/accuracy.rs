//! Accuracy of profiled dependences (Section VI-A, Table I).
//!
//! "To measure the false positive rate (FPR) and the false negative rate
//! (FNR) of the profiled dependences, we implemented a 'perfect
//! signature' ... We use the perfect signature as the baseline."
//!
//! A dependence is identified by `(type, sink, source, variable)`; INIT
//! markers are not dependences and are excluded. FPR is the fraction of
//! profiled dependences that are not in the baseline; FNR is the fraction
//! of baseline dependences the profiler missed.

use dp_core::ProfileResult;
use dp_types::{DepType, FxHashSet, SourceLoc, ThreadId, VarId};

type Ident = (DepType, SourceLoc, ThreadId, SourceLoc, ThreadId, VarId);

/// FPR/FNR comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Distinct dependences in the baseline (the "# dependences" column).
    pub baseline: usize,
    /// Distinct dependences reported by the profiler under test.
    pub profiled: usize,
    /// Reported but not real.
    pub false_positives: usize,
    /// Real but not reported.
    pub false_negatives: usize,
}

impl Accuracy {
    /// False positive rate in percent (of reported dependences), as in
    /// Table I.
    pub fn fpr(&self) -> f64 {
        if self.profiled == 0 {
            0.0
        } else {
            100.0 * self.false_positives as f64 / self.profiled as f64
        }
    }

    /// False negative rate in percent (of baseline dependences).
    pub fn fnr(&self) -> f64 {
        if self.baseline == 0 {
            0.0
        } else {
            100.0 * self.false_negatives as f64 / self.baseline as f64
        }
    }
}

/// Degradation report of a single run: how much of the event stream the
/// profiler actually observed, and what that implies for completeness.
///
/// The paper's Formula 2 quantifies the accuracy a signature gives up for
/// bounded memory; this is the same reporting discipline applied to the
/// fault-tolerance path — when workers die or events are dropped under
/// backpressure, the loss is *measured and bounded*, not silent. All
/// numbers come from [`ProfileStats`](dp_core::ProfileStats); dependences
/// that were reported remain exact, the loss is purely one of coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Accesses the workers actually processed.
    pub observed_events: u64,
    /// Events the router dropped (dead/stalled workers).
    pub dropped_events: u64,
    /// Event copies the router diverted from a dead owner to a surviving
    /// worker (coverage preserved, per-worker attribution changed).
    pub rerouted_events: u64,
    /// Events still sitting in abandoned workers' queues when the drain
    /// deadline expired.
    pub in_flight_at_shutdown: u64,
    /// Ids of workers lost mid-run.
    pub failed_workers: Vec<usize>,
    /// Total workers in the run.
    pub workers: usize,
}

impl Degradation {
    /// Extracts the degradation report from a run.
    pub fn from_result(r: &ProfileResult) -> Self {
        Degradation {
            observed_events: r.stats.events,
            dropped_events: r.stats.dropped_events,
            rerouted_events: r.metrics.conservation.rerouted,
            in_flight_at_shutdown: r.metrics.conservation.in_flight_at_shutdown,
            failed_workers: r.stats.worker_failures.iter().map(|f| f.worker).collect(),
            workers: r.workers,
        }
    }

    /// True when anything was lost.
    pub fn degraded(&self) -> bool {
        self.dropped_events > 0 || !self.failed_workers.is_empty()
    }

    /// Fraction of the offered event stream that was lost, in percent
    /// (dropped / (observed + dropped)).
    pub fn loss_rate(&self) -> f64 {
        let offered = self.observed_events + self.dropped_events;
        if offered == 0 {
            0.0
        } else {
            100.0 * self.dropped_events as f64 / offered as f64
        }
    }

    /// Formula-2-style estimate of the false-negative rate the loss
    /// induces, in percent: a dependence is observed only if both its
    /// endpoints were, so under a uniform loss rate `p` the expected
    /// fraction of missed dependences is `1 - (1 - p)²`. An estimate,
    /// not a bound — losses concentrated on one worker's residue class
    /// (the usual failure shape) miss that class's dependences entirely.
    pub fn expected_fnr(&self) -> f64 {
        let p = self.loss_rate() / 100.0;
        100.0 * (1.0 - (1.0 - p) * (1.0 - p))
    }

    /// One-line human-readable summary (the CLI's degraded banner).
    pub fn summary(&self) -> String {
        if !self.degraded() {
            return "profile complete (no events dropped, no worker failures)".to_string();
        }
        let workers = if self.failed_workers.is_empty() {
            String::new()
        } else {
            let ids: Vec<String> = self.failed_workers.iter().map(|w| format!("{w}")).collect();
            format!(
                ", worker{} {} of {} failed",
                if ids.len() == 1 { "" } else { "s" },
                ids.join("/"),
                self.workers
            )
        };
        let rerouted = if self.rerouted_events == 0 {
            String::new()
        } else {
            format!(", {} events rerouted", self.rerouted_events)
        };
        format!(
            "profile degraded ({} events dropped, {:.2}% of stream{}{})",
            self.dropped_events,
            self.loss_rate(),
            workers,
            rerouted
        )
    }
}

fn ident_set(r: &ProfileResult) -> FxHashSet<Ident> {
    r.deps
        .dependences()
        .filter(|(d, _)| d.edge.dtype != DepType::Init)
        .map(|(d, _)| d.identity())
        .collect()
}

/// Compares a profiled result against the perfect-signature baseline.
pub fn compare(baseline: &ProfileResult, profiled: &ProfileResult) -> Accuracy {
    let base = ident_set(baseline);
    let prof = ident_set(profiled);
    let false_positives = prof.difference(&base).count();
    let false_negatives = base.difference(&prof).count();
    Accuracy { baseline: base.len(), profiled: prof.len(), false_positives, false_negatives }
}

/// Convenience: the degradation report of a run (see [`Degradation`]).
pub fn degradation(r: &ProfileResult) -> Degradation {
    Degradation::from_result(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::SequentialProfiler;
    use dp_sig::{ExtendedSlot, Signature};
    use dp_types::{loc::loc, MemAccess, TraceEvent};

    /// Write every address, then read every address: collisions in a
    /// small signature corrupt the remembered write lines, producing both
    /// false positives (wrong source) and false negatives (true pair
    /// missing).
    fn stream(n: u64) -> Vec<TraceEvent> {
        let mut evs = Vec::new();
        let mut ts = 0;
        for i in 0..n {
            ts += 1;
            evs.push(TraceEvent::Access(MemAccess::write(
                0x1000 + i * 8,
                ts,
                loc(1, i as u32 + 1),
                1,
                0,
            )));
        }
        for i in 0..n {
            ts += 1;
            evs.push(TraceEvent::Access(MemAccess::read(
                0x1000 + i * 8,
                ts,
                loc(1, i as u32 + 10_000),
                1,
                0,
            )));
        }
        evs
    }

    fn run<S: dp_sig::AccessStore>(
        mut p: SequentialProfiler<S>,
        evs: &[TraceEvent],
    ) -> ProfileResult {
        for e in evs {
            p.on_event(e);
        }
        p.finish()
    }

    #[test]
    fn perfect_vs_perfect_is_exact() {
        let evs = stream(500);
        let a = run(SequentialProfiler::perfect(), &evs);
        let b = run(SequentialProfiler::perfect(), &evs);
        let acc = compare(&a, &b);
        assert_eq!(acc.fpr(), 0.0);
        assert_eq!(acc.fnr(), 0.0);
        assert!(acc.baseline > 0);
    }

    #[test]
    fn large_signature_is_near_exact_small_is_not() {
        let evs = stream(2000);
        let base = run(SequentialProfiler::perfect(), &evs);
        let big = run(
            SequentialProfiler::with_stores(
                Signature::<ExtendedSlot>::new(1 << 20),
                Signature::<ExtendedSlot>::new(1 << 20),
            ),
            &evs,
        );
        let small = run(
            SequentialProfiler::with_stores(
                Signature::<ExtendedSlot>::new(64),
                Signature::<ExtendedSlot>::new(64),
            ),
            &evs,
        );
        let acc_big = compare(&base, &big);
        let acc_small = compare(&base, &small);
        assert!(acc_big.fpr() < 1.0, "big fpr {}", acc_big.fpr());
        assert!(acc_big.fnr() < 1.0, "big fnr {}", acc_big.fnr());
        assert!(
            acc_small.fpr() > acc_big.fpr() && acc_small.fnr() > acc_big.fnr(),
            "small {} {} vs big {} {}",
            acc_small.fpr(),
            acc_small.fnr(),
            acc_big.fpr(),
            acc_big.fnr()
        );
    }

    #[test]
    fn degradation_rates_and_summary() {
        let mut r = ProfileResult { workers: 4, ..Default::default() };
        r.stats.events = 900;
        assert!(!degradation(&r).degraded());
        assert_eq!(degradation(&r).loss_rate(), 0.0);
        assert!(degradation(&r).summary().contains("complete"));

        r.stats.dropped_events = 100;
        r.stats.worker_failures.push(dp_core::WorkerFailure {
            worker: 2,
            workers: 4,
            cause: dp_core::FailureCause::Unresponsive,
        });
        let d = degradation(&r);
        assert!(d.degraded());
        assert_eq!(d.loss_rate(), 10.0);
        // 1 - 0.9² = 19%
        assert!((d.expected_fnr() - 19.0).abs() < 1e-9, "{}", d.expected_fnr());
        let s = d.summary();
        assert!(s.contains("100 events dropped"), "{s}");
        assert!(s.contains("worker 2 of 4 failed"), "{s}");
        // Rerouting is only mentioned when it happened.
        assert!(!s.contains("rerouted"), "{s}");
        r.metrics.conservation.rerouted = 7;
        let s = degradation(&r).summary();
        assert!(s.contains(", 7 events rerouted"), "{s}");
    }

    #[test]
    fn degradation_of_empty_run_is_clean() {
        let d = degradation(&ProfileResult::default());
        assert_eq!(d.loss_rate(), 0.0);
        assert_eq!(d.expected_fnr(), 0.0);
        assert!(!d.degraded());
    }

    #[test]
    fn init_records_do_not_count() {
        let mut p = SequentialProfiler::perfect();
        p.on_event(&TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), 1, 0)));
        let r = p.finish();
        let acc = compare(&r, &r);
        assert_eq!(acc.baseline, 0);
    }
}
