//! Dependence-based program analyses on top of the profiler.
//!
//! The paper's thesis is that one generic dependence profiler can serve
//! many analyses. This crate holds the analyses used in its evaluation:
//!
//! - [`accuracy`] — false-positive/false-negative rates of profiled
//!   dependences against the perfect-signature baseline (Table I).
//! - [`parallelism`] — loop classification / parallelism discovery, the
//!   DiscoPoP use case (Table II, Section VII-A).
//! - [`comm`] — producer/consumer communication matrices from cross-thread
//!   RAW dependences (Figure 9, Section VII-B).
//! - [`races`] — potential data races from timestamp-reversal flags
//!   (Section V-B).
//! - [`graph`], [`looptable`], [`framework`] — the integrated
//!   program-analysis framework announced in the paper's conclusion:
//!   dependence-graph and loop-table representations plus a plugin API
//!   for downstream analyses.
//! - [`incremental`] — the online twin of the above: live
//!   loop-parallelism, communication and race state folded from
//!   [`AnalysisDelta`](dp_core::AnalysisDelta)s while the profile is
//!   still running, equal to the post-hoc passes once the stream ends.

#![warn(missing_docs)]

pub mod accuracy;
pub mod comm;
pub mod framework;
pub mod graph;
pub mod incremental;
pub mod looptable;
pub mod parallelism;
pub mod races;
pub mod schedule;
pub mod unions;

pub use accuracy::{compare, degradation, Accuracy, Degradation};
pub use comm::{communication_matrix, CommMatrix};
pub use framework::{Analysis, AnalysisContext, Framework, IncrementalAnalysis};
pub use graph::DepGraph;
pub use incremental::{
    observed_comm_dim, observed_loop_metas, posthoc_report, OnlineAnalysis, OnlineLoopRow,
    OnlineReport,
};
pub use looptable::LoopTable;
pub use parallelism::{
    classify_loops, privatization_candidates, LoopClass, LoopMeta, LoopVerdict,
    PrivatizationCandidate,
};
pub use races::{find_races, RaceHint};
pub use schedule::{max_wave_width, schedule_waves, section_dag, SectionDag, SectionMeta};
pub use unions::{stability, union_runs};
