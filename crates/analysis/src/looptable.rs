//! The loop table representation (Section VIII's framework: "loop table").
//!
//! One row per static loop: runtime statistics (instances, iterations)
//! joined with the dependence-test verdict and the dependences carried by
//! the loop — the digest a parallelization assistant shows its user.

use crate::parallelism::{classify_loops, LoopClass, LoopMeta, LoopVerdict};
use dp_core::ProfileResult;
use dp_types::Interner;

/// One row of the loop table.
#[derive(Debug, Clone)]
pub struct LoopRow {
    /// Verdict (includes meta, class, blockers).
    pub verdict: LoopVerdict,
    /// Dynamic instances observed.
    pub instances: u64,
    /// Average iterations per instance (0 if never run).
    pub avg_iters: f64,
}

impl LoopRow {
    /// Crude upper bound on the speedup parallelizing this loop could
    /// yield — the kind of guidance Kremlin-style tools derive from
    /// dependence profiles: a DOALL loop parallelizes across its
    /// iterations, a reduction is limited by the combining tree, a
    /// sequential loop by its dependence chain.
    pub fn estimated_speedup(&self) -> f64 {
        let n = self.avg_iters.max(1.0);
        match self.verdict.class {
            LoopClass::Doall => n,
            LoopClass::Reduction => n / (1.0 + n.log2().max(0.0)),
            LoopClass::Sequential | LoopClass::NotExecuted => 1.0,
        }
    }
}

/// The loop table.
#[derive(Debug, Clone, Default)]
pub struct LoopTable {
    /// Rows, in loop-id order.
    pub rows: Vec<LoopRow>,
}

impl LoopTable {
    /// Builds the table for `loops` from a profiling result.
    pub fn build(result: &ProfileResult, loops: &[LoopMeta]) -> Self {
        let verdicts = classify_loops(result, loops);
        let rows = verdicts
            .into_iter()
            .map(|verdict| {
                let rec = result.deps.loop_record(verdict.meta.id);
                let instances = rec.map_or(0, |r| r.instances);
                let avg_iters = rec.map_or(0.0, |r| {
                    if r.instances == 0 {
                        0.0
                    } else {
                        r.total_iters as f64 / r.instances as f64
                    }
                });
                LoopRow { verdict, instances, avg_iters }
            })
            .collect();
        LoopTable { rows }
    }

    /// Loops the dependence test accepts as parallelizable.
    pub fn parallelizable(&self) -> impl Iterator<Item = &LoopRow> {
        self.rows.iter().filter(|r| r.verdict.identified())
    }

    /// Loops blocked only by accumulator self-dependences (reduction
    /// candidates a smarter tool could still parallelize).
    pub fn reduction_candidates(&self) -> impl Iterator<Item = &LoopRow> {
        self.rows.iter().filter(|r| r.verdict.class == LoopClass::Reduction)
    }

    /// Plain-text rendering. Blocker variables are resolved through the
    /// interner so the table names them like the report does
    /// (`{RAW 1:59|temp1}`); a foreign id falls back to `var<N>`.
    pub fn render(&self, interner: &Interner) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>5} {:>11} {:>10} {:>10}  blocker\n",
            "loop", "OMP", "class", "instances", "avg iters"
        ));
        for r in &self.rows {
            let class = match r.verdict.class {
                LoopClass::Doall => "DOALL",
                LoopClass::Reduction => "reduction",
                LoopClass::Sequential => "sequential",
                LoopClass::NotExecuted => "not-run",
            };
            let blocker = r
                .verdict
                .blockers
                .first()
                .map(|&(sink, src, var)| {
                    let name =
                        interner.get(var).map(str::to_owned).unwrap_or_else(|| format!("var{var}"));
                    format!("{name}: {src} -> {sink}")
                })
                .unwrap_or_default();
            out.push_str(&format!(
                "{:<24} {:>5} {:>11} {:>10} {:>10.1}  {}\n",
                r.verdict.meta.name,
                if r.verdict.meta.omp { "yes" } else { "no" },
                class,
                r.instances,
                r.avg_iters,
                blocker
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::SequentialProfiler;
    use dp_types::{loc::loc, MemAccess, TraceEvent, Tracer};

    fn result_with_loop() -> ProfileResult {
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::LoopBegin { loop_id: 0, loc: loc(1, 1), thread: 0, ts: 1 });
        for it in 0..4u64 {
            p.event(TraceEvent::LoopIter { loop_id: 0, iter: it, thread: 0, ts: 2 + it * 10 });
            let a = 0x100 + it * 8;
            p.event(TraceEvent::Access(MemAccess::write(a, 3 + it * 10, loc(1, 2), 1, 0)));
        }
        p.event(TraceEvent::LoopEnd { loop_id: 0, loc: loc(1, 3), iters: 4, thread: 0, ts: 99 });
        p.finish()
    }

    fn meta() -> Vec<LoopMeta> {
        vec![
            LoopMeta { id: 0, name: "init".into(), omp: true },
            LoopMeta { id: 7, name: "ghost".into(), omp: false },
        ]
    }

    #[test]
    fn table_rows_join_stats_and_verdicts() {
        let r = result_with_loop();
        let t = LoopTable::build(&r, &meta());
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].instances, 1);
        assert!((t.rows[0].avg_iters - 4.0).abs() < 1e-9);
        assert_eq!(t.rows[0].verdict.class, LoopClass::Doall);
        assert_eq!(t.rows[1].verdict.class, LoopClass::NotExecuted);
        assert_eq!(t.parallelizable().count(), 1);
        assert_eq!(t.reduction_candidates().count(), 0);
    }

    #[test]
    fn render_mentions_loops() {
        let r = result_with_loop();
        let t = LoopTable::build(&r, &meta());
        let s = t.render(&Interner::new());
        assert!(s.contains("init"));
        assert!(s.contains("DOALL"));
        assert!(s.contains("not-run"));
    }

    #[test]
    fn render_resolves_blocker_variable_names() {
        let mut interner = Interner::new();
        let acc = interner.intern("acc");
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::LoopBegin { loop_id: 1, loc: loc(1, 5), thread: 0, ts: 1 });
        for it in 0..3u64 {
            let t = 10 + it * 10;
            p.event(TraceEvent::LoopIter { loop_id: 1, iter: it, thread: 0, ts: t });
            p.event(TraceEvent::Access(MemAccess::read(0x900, t + 1, loc(1, 6), acc, 0)));
            p.event(TraceEvent::Access(MemAccess::write(0x900, t + 2, loc(1, 6), acc, 0)));
        }
        p.event(TraceEvent::LoopEnd { loop_id: 1, loc: loc(1, 7), iters: 3, thread: 0, ts: 99 });
        let r = p.finish();
        let t = LoopTable::build(&r, &[LoopMeta { id: 1, name: "sum".into(), omp: true }]);
        let s = t.render(&interner);
        assert!(s.contains("acc: 1:6 -> 1:6"), "blocker must name the variable:\n{s}");
        // A foreign id (not in this interner) falls back to var<N>.
        let s2 = t.render(&Interner::new());
        assert!(s2.contains(&format!("var{acc}: 1:6 -> 1:6")), "{s2}");
    }
}

#[cfg(test)]
mod speedup_tests {
    use super::*;
    use crate::parallelism::LoopVerdict;

    fn row(class: LoopClass, iters: f64) -> LoopRow {
        LoopRow {
            verdict: LoopVerdict {
                meta: LoopMeta { id: 0, name: "l".into(), omp: true },
                class,
                blockers: Vec::new(),
                iterations: iters as u64,
            },
            instances: 1,
            avg_iters: iters,
        }
    }

    #[test]
    fn speedup_ordering() {
        let doall = row(LoopClass::Doall, 1024.0).estimated_speedup();
        let red = row(LoopClass::Reduction, 1024.0).estimated_speedup();
        let seq = row(LoopClass::Sequential, 1024.0).estimated_speedup();
        assert_eq!(doall, 1024.0);
        assert!(red > 1.0 && red < doall, "{red}");
        assert_eq!(seq, 1.0);
    }
}
