//! Communication-pattern detection (Section VII-B, Figure 9).
//!
//! "Producer-consumer behavior describes a read-after-write relation
//! between memory operations, which can be easily derived from the RAW
//! dependences produced by our profiler. With detailed information such as
//! thread IDs available, we can generate the communication matrix directly
//! from the output of our profiler."
//!
//! The matrix is indexed `[producer][consumer]`; each cross-thread RAW
//! dependence contributes its dynamic occurrence count. The ASCII
//! rendering shades cells by intensity, darkest = strongest, like the
//! squares of Figure 9.

use dp_core::ProfileResult;
use dp_types::{DepType, ThreadId};

/// A producer × consumer communication-intensity matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommMatrix {
    n: usize,
    counts: Vec<u64>,
}

impl CommMatrix {
    /// Empty matrix of dimension `n` — the starting point for
    /// incremental construction (see `dp_analysis::incremental`).
    pub fn zero(n: usize) -> Self {
        CommMatrix { n, counts: vec![0; n * n] }
    }

    /// Adds `count` occurrences to the `producer -> consumer` cell.
    /// Out-of-range or self-communication contributions are ignored,
    /// mirroring [`communication_matrix`]'s filter.
    pub fn add(&mut self, producer: ThreadId, consumer: ThreadId, count: u64) {
        let (p, c) = (producer as usize, consumer as usize);
        if p != c && p < self.n && c < self.n {
            self.counts[p * self.n + c] += count;
        }
    }

    /// Matrix dimension (threads).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Communication intensity from `producer` to `consumer`.
    pub fn get(&self, producer: ThreadId, consumer: ThreadId) -> u64 {
        self.counts[producer as usize * self.n + consumer as usize]
    }

    /// Total cross-thread communication volume.
    pub fn total(&self) -> u64 {
        (0..self.n)
            .flat_map(|p| (0..self.n).map(move |c| (p, c)))
            .filter(|(p, c)| p != c)
            .map(|(p, c)| self.counts[p * self.n + c])
            .sum()
    }

    /// ASCII heatmap, producers on rows (the Figure 9 rendering).
    pub fn render_ascii(&self) -> String {
        const SHADES: [char; 5] = ['·', '░', '▒', '▓', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        out.push_str("prod\\cons ");
        for c in 0..self.n {
            out.push_str(&format!("{c:>3}"));
        }
        out.push('\n');
        for p in 0..self.n {
            out.push_str(&format!("{p:>9} "));
            for c in 0..self.n {
                let v = self.counts[p * self.n + c];
                let shade = if v == 0 {
                    SHADES[0]
                } else {
                    let bucket = (v * 4).div_ceil(max).min(4) as usize;
                    SHADES[bucket.max(1)]
                };
                out.push_str(&format!("  {shade}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Builds the communication matrix from cross-thread RAW dependences.
/// Thread ids are used as matrix indices directly; `nthreads` must exceed
/// the largest thread id observed (main = 0, spawned = 1..).
pub fn communication_matrix(result: &ProfileResult, nthreads: usize) -> CommMatrix {
    let mut m = CommMatrix { n: nthreads, counts: vec![0; nthreads * nthreads] };
    for (d, val) in result.deps.dependences() {
        if d.edge.dtype != DepType::Raw {
            continue;
        }
        let (prod, cons) = (d.edge.source_thread as usize, d.sink.thread as usize);
        if prod == cons || prod >= nthreads || cons >= nthreads {
            continue;
        }
        m.counts[prod * nthreads + cons] += val.count;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::SequentialProfiler;
    use dp_types::{loc::loc, MemAccess, TraceEvent, Tracer};

    #[test]
    fn producer_consumer_counted() {
        let mut p = SequentialProfiler::perfect();
        // thread 1 writes, thread 2 reads, 5 times
        for i in 0..5u64 {
            p.event(TraceEvent::Access(MemAccess::write(0x8, i * 2 + 1, loc(1, 1), 1, 1)));
            p.event(TraceEvent::Access(MemAccess::read(0x8, i * 2 + 2, loc(1, 2), 1, 2)));
        }
        let r = p.finish();
        let m = communication_matrix(&r, 4);
        assert_eq!(m.get(1, 2), 5);
        assert_eq!(m.get(2, 1), 0);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn self_communication_excluded() {
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), 1, 1)));
        p.event(TraceEvent::Access(MemAccess::read(0x8, 2, loc(1, 2), 1, 1)));
        let r = p.finish();
        let m = communication_matrix(&r, 2);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn ascii_rendering_shades() {
        let mut p = SequentialProfiler::perfect();
        for i in 0..10u64 {
            p.event(TraceEvent::Access(MemAccess::write(0x8, i * 2 + 1, loc(1, 1), 1, 0)));
            p.event(TraceEvent::Access(MemAccess::read(0x8, i * 2 + 2, loc(1, 2), 1, 1)));
        }
        p.event(TraceEvent::Access(MemAccess::write(0x10, 100, loc(1, 3), 1, 1)));
        p.event(TraceEvent::Access(MemAccess::read(0x10, 101, loc(1, 4), 1, 0)));
        let r = p.finish();
        let m = communication_matrix(&r, 2);
        let art = m.render_ascii();
        assert!(art.contains('█'), "{art}");
        assert!(art.contains('·'), "{art}");
        assert_eq!(art.lines().count(), 3);
    }
}
