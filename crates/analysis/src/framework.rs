//! The plugin framework of Section VIII.
//!
//! "An integrated program-analysis framework with APIs to retrieve
//! dependence information is already in development. The framework
//! reorganizes profiled data into multiple representations ... and a
//! dependence-based program analysis can be implemented as a plugin."
//!
//! [`AnalysisContext`] exposes the representations (raw result,
//! dependence graph, loop table, interner); an [`Analysis`] plugin
//! consumes the context and produces a report fragment; the
//! [`Framework`] builds the representations once and runs every
//! registered plugin over them. The bundled plugins wrap this crate's
//! analyses, and downstream tools add their own by implementing the
//! one-method trait.

use crate::graph::DepGraph;
use crate::looptable::LoopTable;
use crate::parallelism::LoopMeta;
use dp_core::{AnalysisDelta, ProfileResult};
use dp_types::Interner;

/// Everything a plugin may inspect, built once per framework run.
pub struct AnalysisContext<'a> {
    /// The raw profiling result (dependence store, stats, memory).
    pub result: &'a ProfileResult,
    /// Variable names.
    pub interner: &'a Interner,
    /// Static loop metadata.
    pub loops: &'a [LoopMeta],
    /// Function names (indexed by static function id), for the execution
    /// and call trees.
    pub func_names: &'a [String],
    /// The dependence graph representation.
    pub graph: &'a DepGraph,
    /// The loop table representation.
    pub loop_table: &'a LoopTable,
    /// Target thread count (0 for sequential targets).
    pub nthreads: usize,
}

/// A dependence-based program analysis plugin.
pub trait Analysis {
    /// Short name shown in the combined report.
    fn name(&self) -> &str;
    /// Runs the analysis, returning a human-readable report fragment.
    fn run(&mut self, ctx: &AnalysisContext<'_>) -> String;
}

/// An analysis that can keep pace with a *running* profile: instead of
/// one post-hoc pass over the finished result, it folds
/// [`AnalysisDelta`]s as chunks merge and can report at any moment.
///
/// Passes opt in one by one — an existing [`Analysis`] that has not
/// been rewritten incrementally still participates in live reporting
/// through [`builtin::Posthoc`], which mirrors the deltas into a
/// [`DepStore`](dp_core::DepStore) and re-runs the pass post-hoc on
/// each report.
pub trait IncrementalAnalysis {
    /// Short name shown in the combined report.
    fn name(&self) -> &str;
    /// Folds one drained delta into the analysis state.
    fn fold(&mut self, delta: &AnalysisDelta);
    /// Renders the current state as a report fragment.
    fn live_report(&mut self, interner: &Interner) -> String;
}

/// Builds the shared representations and runs plugins.
#[derive(Default)]
pub struct Framework {
    plugins: Vec<Box<dyn Analysis>>,
    incremental: Vec<Box<dyn IncrementalAnalysis>>,
}

impl Framework {
    /// An empty framework (register plugins, or use
    /// [`Framework::with_builtin`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// A framework preloaded with the paper's application analyses:
    /// parallelism discovery, communication patterns, race hints, and a
    /// graph summary.
    pub fn with_builtin() -> Self {
        let mut f = Self::new();
        f.register(Box::new(builtin::ParallelismPlugin));
        f.register(Box::new(builtin::CommPlugin));
        f.register(Box::new(builtin::RacePlugin));
        f.register(Box::new(builtin::GraphSummaryPlugin));
        f.register(Box::new(builtin::ExecTreePlugin));
        f
    }

    /// A framework preloaded with the live (incremental) twins of the
    /// paper's application analyses: loop classification, communication
    /// patterns and race hints, each folding deltas instead of
    /// re-scanning the merged map.
    pub fn with_builtin_live() -> Self {
        let mut f = Self::new();
        f.register_incremental(Box::new(builtin::LiveParallelism::default()));
        f.register_incremental(Box::new(builtin::LiveComm::default()));
        f.register_incremental(Box::new(builtin::LiveRaces::default()));
        f
    }

    /// Registers a plugin.
    pub fn register(&mut self, plugin: Box<dyn Analysis>) {
        self.plugins.push(plugin);
    }

    /// Registers an incremental plugin for live reporting.
    pub fn register_incremental(&mut self, plugin: Box<dyn IncrementalAnalysis>) {
        self.incremental.push(plugin);
    }

    /// Number of registered incremental plugins.
    pub fn incremental_len(&self) -> usize {
        self.incremental.len()
    }

    /// Folds a drained delta into every incremental plugin.
    pub fn fold(&mut self, delta: &AnalysisDelta) {
        for p in &mut self.incremental {
            p.fold(delta);
        }
    }

    /// Renders the current live state of every incremental plugin,
    /// returning `(name, report)` pairs. Unlike [`Framework::run`] this
    /// needs no finished [`ProfileResult`] — it answers from folded
    /// state mid-profile.
    pub fn live_reports(&mut self, interner: &Interner) -> Vec<(String, String)> {
        self.incremental
            .iter_mut()
            .map(|p| (p.name().to_owned(), p.live_report(interner)))
            .collect()
    }

    /// Number of registered plugins.
    pub fn len(&self) -> usize {
        self.plugins.len()
    }

    /// True if no plugins are registered.
    pub fn is_empty(&self) -> bool {
        self.plugins.is_empty()
    }

    /// Builds the representations once and runs every plugin, returning
    /// `(name, report)` pairs.
    pub fn run(
        &mut self,
        result: &ProfileResult,
        interner: &Interner,
        loops: &[LoopMeta],
        func_names: &[String],
        nthreads: usize,
    ) -> Vec<(String, String)> {
        let graph = DepGraph::build(result);
        let loop_table = LoopTable::build(result, loops);
        let ctx = AnalysisContext {
            result,
            interner,
            loops,
            func_names,
            graph: &graph,
            loop_table: &loop_table,
            nthreads,
        };
        self.plugins.iter_mut().map(|p| (p.name().to_owned(), p.run(&ctx))).collect()
    }
}

/// The bundled plugins.
pub mod builtin {
    use super::*;

    /// Wraps loop classification (Section VII-A).
    pub struct ParallelismPlugin;

    impl Analysis for ParallelismPlugin {
        fn name(&self) -> &str {
            "parallelism-discovery"
        }

        fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
            let total = ctx.loop_table.rows.len();
            let doall = ctx.loop_table.parallelizable().count();
            let red = ctx.loop_table.reduction_candidates().count();
            format!(
                "{doall}/{total} loops parallelizable, {red} reduction candidates\n{}",
                ctx.loop_table.render(ctx.interner)
            )
        }
    }

    /// Wraps the communication matrix (Section VII-B).
    pub struct CommPlugin;

    impl Analysis for CommPlugin {
        fn name(&self) -> &str {
            "communication-pattern"
        }

        fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
            if ctx.nthreads < 2 {
                return "sequential target: no cross-thread communication".into();
            }
            let m = crate::comm::communication_matrix(ctx.result, ctx.nthreads + 1);
            format!("total volume {}\n{}", m.total(), m.render_ascii())
        }
    }

    /// Wraps race hints (Section V-B).
    pub struct RacePlugin;

    impl Analysis for RacePlugin {
        fn name(&self) -> &str {
            "race-hints"
        }

        fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
            let races = crate::races::find_races(ctx.result);
            if races.is_empty() {
                "no reversal-flagged dependences".into()
            } else {
                races
                    .iter()
                    .map(|r| {
                        format!(
                            "{:?} {} (t{}) <- {} (t{}) on '{}'",
                            r.dtype,
                            r.sink.0,
                            r.sink.1,
                            r.source.0,
                            r.source.1,
                            ctx.interner.get(r.var).unwrap_or("?")
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n")
            }
        }
    }

    /// The dynamic execution tree of Section VIII, rendered with function
    /// and loop names.
    pub struct ExecTreePlugin;

    impl Analysis for ExecTreePlugin {
        fn name(&self) -> &str {
            "execution-tree"
        }

        fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
            use dp_core::ExecNodeKind;
            let tree = &ctx.result.exec_tree;
            if tree.roots().count() == 0 {
                return "no structural events recorded".into();
            }
            tree.render(|k| match k {
                ExecNodeKind::Call(f) => {
                    ctx.func_names.get(f as usize).cloned().unwrap_or_else(|| format!("fn{f}"))
                }
                ExecNodeKind::Loop(l) => ctx
                    .loops
                    .iter()
                    .find(|m| m.id == l)
                    .map(|m| format!("loop {}", m.name))
                    .unwrap_or_else(|| format!("loop#{l}")),
            })
        }
    }

    /// Live twin of [`ParallelismPlugin`]: folds deltas into an
    /// [`OnlineAnalysis`](crate::incremental::OnlineAnalysis) and
    /// renders the current loop verdicts.
    #[derive(Default)]
    pub struct LiveParallelism {
        online: crate::incremental::OnlineAnalysis,
    }

    impl IncrementalAnalysis for LiveParallelism {
        fn name(&self) -> &str {
            "live-parallelism"
        }

        fn fold(&mut self, delta: &AnalysisDelta) {
            self.online.fold(delta);
        }

        fn live_report(&mut self, _interner: &Interner) -> String {
            let report = self.online.report();
            if report.loops.is_empty() {
                return "no loops observed yet".into();
            }
            report
                .loops
                .iter()
                .map(|l| {
                    format!(
                        "{}: {} (instances={}, iters={}, blockers={})",
                        l.name,
                        crate::incremental::class_name(l.class),
                        l.instances,
                        l.iterations,
                        l.blockers.len()
                    )
                })
                .collect::<Vec<_>>()
                .join("\n")
        }
    }

    /// Live twin of [`CommPlugin`], sized by the threads actually seen
    /// communicating rather than a declared target count.
    #[derive(Default)]
    pub struct LiveComm {
        online: crate::incremental::OnlineAnalysis,
    }

    impl IncrementalAnalysis for LiveComm {
        fn name(&self) -> &str {
            "live-communication"
        }

        fn fold(&mut self, delta: &AnalysisDelta) {
            self.online.fold(delta);
        }

        fn live_report(&mut self, _interner: &Interner) -> String {
            let report = self.online.report();
            if report.comm.dim() == 0 {
                return "no cross-thread communication yet".into();
            }
            format!("total volume {}\n{}", report.comm.total(), report.comm.render_ascii())
        }
    }

    /// Live twin of [`RacePlugin`].
    #[derive(Default)]
    pub struct LiveRaces {
        online: crate::incremental::OnlineAnalysis,
    }

    impl IncrementalAnalysis for LiveRaces {
        fn name(&self) -> &str {
            "live-races"
        }

        fn fold(&mut self, delta: &AnalysisDelta) {
            self.online.fold(delta);
        }

        fn live_report(&mut self, interner: &Interner) -> String {
            let report = self.online.report();
            if report.races.is_empty() {
                return "no reversal-flagged dependences".into();
            }
            report
                .races
                .iter()
                .map(|r| {
                    format!(
                        "{:?} {} (t{}) <- {} (t{}) on '{}'",
                        r.dtype,
                        r.sink.0,
                        r.sink.1,
                        r.source.0,
                        r.source.1,
                        interner.get(r.var).unwrap_or("?")
                    )
                })
                .collect::<Vec<_>>()
                .join("\n")
        }
    }

    /// Post-hoc fallback: adapts any non-incremental [`Analysis`] to the
    /// [`IncrementalAnalysis`] interface by mirroring the deltas into a
    /// dependence store and re-running the pass over the reconstruction
    /// on every report. Correct for any pass (the mirror equals the
    /// merged store), at the cost of a full re-run per report — rewrite
    /// hot passes incrementally, wrap the rest.
    pub struct Posthoc<A: Analysis> {
        inner: A,
        mirror: dp_core::DepStore,
        nthreads: usize,
    }

    impl<A: Analysis> Posthoc<A> {
        /// Wraps `inner`; `nthreads` is the target thread count its
        /// context will report.
        pub fn new(inner: A, nthreads: usize) -> Self {
            Posthoc { inner, mirror: dp_core::DepStore::new(), nthreads }
        }
    }

    impl<A: Analysis> IncrementalAnalysis for Posthoc<A> {
        fn name(&self) -> &str {
            self.inner.name()
        }

        fn fold(&mut self, delta: &AnalysisDelta) {
            self.mirror.apply_delta(delta);
        }

        fn live_report(&mut self, interner: &Interner) -> String {
            let result = ProfileResult { deps: self.mirror.clone(), ..Default::default() };
            let metas = crate::incremental::observed_loop_metas(&result);
            let graph = DepGraph::build(&result);
            let loop_table = LoopTable::build(&result, &metas);
            let ctx = AnalysisContext {
                result: &result,
                interner,
                loops: &metas,
                func_names: &[],
                graph: &graph,
                loop_table: &loop_table,
                nthreads: self.nthreads,
            };
            self.inner.run(&ctx)
        }
    }

    /// Dependence-graph shape summary (Kremlin-style critical-path proxy).
    pub struct GraphSummaryPlugin;

    impl Analysis for GraphSummaryPlugin {
        fn name(&self) -> &str {
            "graph-summary"
        }

        fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
            let (n, e) = ctx.graph.size();
            format!("{n} statements, {e} dependence edges, RAW depth {}", ctx.graph.raw_depth())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::SequentialProfiler;
    use dp_types::{loc::loc, MemAccess, TraceEvent, Tracer};

    fn tiny_result() -> ProfileResult {
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), 1, 0)));
        p.event(TraceEvent::Access(MemAccess::read(0x8, 2, loc(1, 2), 1, 0)));
        p.finish()
    }

    #[test]
    fn builtin_framework_runs_all_plugins() {
        let r = tiny_result();
        let interner = Interner::new();
        let mut f = Framework::with_builtin();
        assert_eq!(f.len(), 5);
        let reports = f.run(&r, &interner, &[], &[], 0);
        assert_eq!(reports.len(), 5);
        let names: Vec<_> = reports.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"parallelism-discovery"));
        assert!(names.contains(&"graph-summary"));
        let graph_report = &reports.iter().find(|(n, _)| n == "graph-summary").unwrap().1;
        assert!(graph_report.contains("RAW depth 1"), "{graph_report}");
    }

    #[test]
    fn custom_plugin_sees_context() {
        struct CountDeps;
        impl Analysis for CountDeps {
            fn name(&self) -> &str {
                "count"
            }
            fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
                ctx.result.stats.deps_merged.to_string()
            }
        }
        let r = tiny_result();
        let interner = Interner::new();
        let mut f = Framework::new();
        assert!(f.is_empty());
        f.register(Box::new(CountDeps));
        let out = f.run(&r, &interner, &[], &[], 0);
        assert_eq!(out[0].1, "2"); // INIT + RAW
    }

    #[test]
    fn live_plugins_fold_and_report() {
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::LoopBegin { loop_id: 4, loc: loc(1, 1), thread: 0, ts: 1 });
        p.event(TraceEvent::LoopIter { loop_id: 4, iter: 0, thread: 0, ts: 2 });
        p.event(TraceEvent::Access(MemAccess::write(0x8, 3, loc(1, 2), 1, 0)));
        p.event(TraceEvent::LoopEnd { loop_id: 4, loc: loc(1, 3), iters: 1, thread: 0, ts: 9 });
        p.event(TraceEvent::Access(MemAccess::write(0x80, 10, loc(2, 1), 2, 1)));
        p.event(TraceEvent::Access(MemAccess::read(0x80, 11, loc(2, 2), 2, 2)));
        let r = p.finish();
        let interner = Interner::new();
        let mut f = Framework::with_builtin_live();
        assert_eq!(f.incremental_len(), 3);
        let before = f.live_reports(&interner);
        assert!(before.iter().any(|(_, rep)| rep.contains("no loops observed yet")));
        f.fold(&crate::incremental::full_delta(&r));
        let after = f.live_reports(&interner);
        let names: Vec<_> = after.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["live-parallelism", "live-communication", "live-races"]);
        assert!(after[0].1.contains("loop#4: DOALL"), "{}", after[0].1);
        assert!(after[1].1.contains("total volume 1"), "{}", after[1].1);
        assert!(after[2].1.contains("no reversal-flagged dependences"), "{}", after[2].1);
    }

    #[test]
    fn posthoc_fallback_matches_direct_run() {
        // A pass that has not been rewritten incrementally still answers
        // live queries through the delta-mirror fallback, and its answer
        // matches a direct post-hoc run over the finished result.
        let r = tiny_result();
        let interner = Interner::new();
        let mut f = Framework::new();
        f.register_incremental(Box::new(builtin::Posthoc::new(builtin::GraphSummaryPlugin, 0)));
        f.fold(&crate::incremental::full_delta(&r));
        let live = f.live_reports(&interner);
        let mut direct = Framework::new();
        direct.register(Box::new(builtin::GraphSummaryPlugin));
        let posthoc = direct.run(&r, &interner, &[], &[], 0);
        assert_eq!(live[0].1, posthoc[0].1);
        assert!(live[0].1.contains("dependence edges"), "{}", live[0].1);
    }
}
