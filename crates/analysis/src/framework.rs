//! The plugin framework of Section VIII.
//!
//! "An integrated program-analysis framework with APIs to retrieve
//! dependence information is already in development. The framework
//! reorganizes profiled data into multiple representations ... and a
//! dependence-based program analysis can be implemented as a plugin."
//!
//! [`AnalysisContext`] exposes the representations (raw result,
//! dependence graph, loop table, interner); an [`Analysis`] plugin
//! consumes the context and produces a report fragment; the
//! [`Framework`] builds the representations once and runs every
//! registered plugin over them. The bundled plugins wrap this crate's
//! analyses, and downstream tools add their own by implementing the
//! one-method trait.

use crate::graph::DepGraph;
use crate::looptable::LoopTable;
use crate::parallelism::LoopMeta;
use dp_core::ProfileResult;
use dp_types::Interner;

/// Everything a plugin may inspect, built once per framework run.
pub struct AnalysisContext<'a> {
    /// The raw profiling result (dependence store, stats, memory).
    pub result: &'a ProfileResult,
    /// Variable names.
    pub interner: &'a Interner,
    /// Static loop metadata.
    pub loops: &'a [LoopMeta],
    /// Function names (indexed by static function id), for the execution
    /// and call trees.
    pub func_names: &'a [String],
    /// The dependence graph representation.
    pub graph: &'a DepGraph,
    /// The loop table representation.
    pub loop_table: &'a LoopTable,
    /// Target thread count (0 for sequential targets).
    pub nthreads: usize,
}

/// A dependence-based program analysis plugin.
pub trait Analysis {
    /// Short name shown in the combined report.
    fn name(&self) -> &str;
    /// Runs the analysis, returning a human-readable report fragment.
    fn run(&mut self, ctx: &AnalysisContext<'_>) -> String;
}

/// Builds the shared representations and runs plugins.
#[derive(Default)]
pub struct Framework {
    plugins: Vec<Box<dyn Analysis>>,
}

impl Framework {
    /// An empty framework (register plugins, or use
    /// [`Framework::with_builtin`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// A framework preloaded with the paper's application analyses:
    /// parallelism discovery, communication patterns, race hints, and a
    /// graph summary.
    pub fn with_builtin() -> Self {
        let mut f = Self::new();
        f.register(Box::new(builtin::ParallelismPlugin));
        f.register(Box::new(builtin::CommPlugin));
        f.register(Box::new(builtin::RacePlugin));
        f.register(Box::new(builtin::GraphSummaryPlugin));
        f.register(Box::new(builtin::ExecTreePlugin));
        f
    }

    /// Registers a plugin.
    pub fn register(&mut self, plugin: Box<dyn Analysis>) {
        self.plugins.push(plugin);
    }

    /// Number of registered plugins.
    pub fn len(&self) -> usize {
        self.plugins.len()
    }

    /// True if no plugins are registered.
    pub fn is_empty(&self) -> bool {
        self.plugins.is_empty()
    }

    /// Builds the representations once and runs every plugin, returning
    /// `(name, report)` pairs.
    pub fn run(
        &mut self,
        result: &ProfileResult,
        interner: &Interner,
        loops: &[LoopMeta],
        func_names: &[String],
        nthreads: usize,
    ) -> Vec<(String, String)> {
        let graph = DepGraph::build(result);
        let loop_table = LoopTable::build(result, loops);
        let ctx = AnalysisContext {
            result,
            interner,
            loops,
            func_names,
            graph: &graph,
            loop_table: &loop_table,
            nthreads,
        };
        self.plugins.iter_mut().map(|p| (p.name().to_owned(), p.run(&ctx))).collect()
    }
}

/// The bundled plugins.
pub mod builtin {
    use super::*;

    /// Wraps loop classification (Section VII-A).
    pub struct ParallelismPlugin;

    impl Analysis for ParallelismPlugin {
        fn name(&self) -> &str {
            "parallelism-discovery"
        }

        fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
            let total = ctx.loop_table.rows.len();
            let doall = ctx.loop_table.parallelizable().count();
            let red = ctx.loop_table.reduction_candidates().count();
            format!(
                "{doall}/{total} loops parallelizable, {red} reduction candidates\n{}",
                ctx.loop_table.render(ctx.interner)
            )
        }
    }

    /// Wraps the communication matrix (Section VII-B).
    pub struct CommPlugin;

    impl Analysis for CommPlugin {
        fn name(&self) -> &str {
            "communication-pattern"
        }

        fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
            if ctx.nthreads < 2 {
                return "sequential target: no cross-thread communication".into();
            }
            let m = crate::comm::communication_matrix(ctx.result, ctx.nthreads + 1);
            format!("total volume {}\n{}", m.total(), m.render_ascii())
        }
    }

    /// Wraps race hints (Section V-B).
    pub struct RacePlugin;

    impl Analysis for RacePlugin {
        fn name(&self) -> &str {
            "race-hints"
        }

        fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
            let races = crate::races::find_races(ctx.result);
            if races.is_empty() {
                "no reversal-flagged dependences".into()
            } else {
                races
                    .iter()
                    .map(|r| {
                        format!(
                            "{:?} {} (t{}) <- {} (t{}) on '{}'",
                            r.dtype,
                            r.sink.0,
                            r.sink.1,
                            r.source.0,
                            r.source.1,
                            ctx.interner.get(r.var).unwrap_or("?")
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n")
            }
        }
    }

    /// The dynamic execution tree of Section VIII, rendered with function
    /// and loop names.
    pub struct ExecTreePlugin;

    impl Analysis for ExecTreePlugin {
        fn name(&self) -> &str {
            "execution-tree"
        }

        fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
            use dp_core::ExecNodeKind;
            let tree = &ctx.result.exec_tree;
            if tree.roots().count() == 0 {
                return "no structural events recorded".into();
            }
            tree.render(|k| match k {
                ExecNodeKind::Call(f) => {
                    ctx.func_names.get(f as usize).cloned().unwrap_or_else(|| format!("fn{f}"))
                }
                ExecNodeKind::Loop(l) => ctx
                    .loops
                    .iter()
                    .find(|m| m.id == l)
                    .map(|m| format!("loop {}", m.name))
                    .unwrap_or_else(|| format!("loop#{l}")),
            })
        }
    }

    /// Dependence-graph shape summary (Kremlin-style critical-path proxy).
    pub struct GraphSummaryPlugin;

    impl Analysis for GraphSummaryPlugin {
        fn name(&self) -> &str {
            "graph-summary"
        }

        fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
            let (n, e) = ctx.graph.size();
            format!("{n} statements, {e} dependence edges, RAW depth {}", ctx.graph.raw_depth())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::SequentialProfiler;
    use dp_types::{loc::loc, MemAccess, TraceEvent, Tracer};

    fn tiny_result() -> ProfileResult {
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), 1, 0)));
        p.event(TraceEvent::Access(MemAccess::read(0x8, 2, loc(1, 2), 1, 0)));
        p.finish()
    }

    #[test]
    fn builtin_framework_runs_all_plugins() {
        let r = tiny_result();
        let interner = Interner::new();
        let mut f = Framework::with_builtin();
        assert_eq!(f.len(), 5);
        let reports = f.run(&r, &interner, &[], &[], 0);
        assert_eq!(reports.len(), 5);
        let names: Vec<_> = reports.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"parallelism-discovery"));
        assert!(names.contains(&"graph-summary"));
        let graph_report = &reports.iter().find(|(n, _)| n == "graph-summary").unwrap().1;
        assert!(graph_report.contains("RAW depth 1"), "{graph_report}");
    }

    #[test]
    fn custom_plugin_sees_context() {
        struct CountDeps;
        impl Analysis for CountDeps {
            fn name(&self) -> &str {
                "count"
            }
            fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
                ctx.result.stats.deps_merged.to_string()
            }
        }
        let r = tiny_result();
        let interner = Interner::new();
        let mut f = Framework::new();
        assert!(f.is_empty());
        f.register(Box::new(CountDeps));
        let out = f.run(&r, &interner, &[], &[], 0);
        assert_eq!(out[0].1, "2"); // INIT + RAW
    }
}
