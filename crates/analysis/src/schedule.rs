//! Task-level scheduling from section dependences.
//!
//! The paper's introduction names "runtime scheduling frameworks \[that\]
//! add more parallelism to programs by dispatching code sections in a
//! more effective way" as a third consumer of dependence profiles. This
//! module provides that consumer: given code sections (e.g. the loops of
//! a program, with their source ranges), it builds the section-level task
//! graph from RAW dependences and layers it into *waves* — sections in
//! the same wave have no dataflow between them and could be dispatched
//! concurrently.
//!
//! Only forward dependences (producer section textually before the
//! consumer) are used: a backward RAW implies iteration of an enclosing
//! loop, i.e. the next *instance* of the task graph, not an edge inside
//! one instance.

use dp_core::ProfileResult;
use dp_types::{DepType, SourceLoc};

/// A schedulable code section (typically a loop; build from
/// `Program::loops`).
#[derive(Debug, Clone)]
pub struct SectionMeta {
    /// Stable id (any dense numbering).
    pub id: u32,
    /// Human-readable name.
    pub name: String,
    /// First source line of the section.
    pub begin: SourceLoc,
    /// Last source line of the section (inclusive).
    pub end: SourceLoc,
}

impl SectionMeta {
    fn contains(&self, l: SourceLoc) -> bool {
        l.file == self.begin.file && l.line >= self.begin.line && l.line <= self.end.line
    }
}

/// The section task graph: `edges[i]` lists the sections that consume
/// data produced by section `i` (forward RAW only).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SectionDag {
    /// Adjacency: producer index -> consumer indices (into the meta
    /// slice given to [`section_dag`]).
    pub edges: Vec<Vec<usize>>,
}

/// Builds the section-level dataflow graph from a profiling result.
pub fn section_dag(result: &ProfileResult, sections: &[SectionMeta]) -> SectionDag {
    let find = |l: SourceLoc| sections.iter().position(|s| s.contains(l));
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); sections.len()];
    for (d, _) in result.deps.dependences() {
        if d.edge.dtype != DepType::Raw {
            continue;
        }
        let (Some(src), Some(snk)) = (find(d.edge.source_loc), find(d.sink.loc)) else {
            continue;
        };
        // Forward edges only; self-edges are intra-section.
        if src != snk
            && sections[src].begin.line < sections[snk].begin.line
            && !edges[src].contains(&snk)
        {
            edges[src].push(snk);
        }
    }
    for e in &mut edges {
        e.sort_unstable();
    }
    SectionDag { edges }
}

/// Layers the DAG into waves: wave k holds every section whose producers
/// all sit in waves `< k`. Sections in one wave are mutually independent
/// and could be dispatched concurrently by a runtime scheduler.
pub fn schedule_waves(dag: &SectionDag) -> Vec<Vec<usize>> {
    let n = dag.edges.len();
    let mut indeg = vec![0usize; n];
    for outs in &dag.edges {
        for &c in outs {
            indeg[c] += 1;
        }
    }
    let mut assigned = vec![false; n];
    let mut waves = Vec::new();
    let mut remaining = n;
    while remaining > 0 {
        let wave: Vec<usize> = (0..n).filter(|&i| !assigned[i] && indeg[i] == 0).collect();
        if wave.is_empty() {
            // Cycle through an enclosing loop: emit the rest as one final
            // (sequentialized) wave rather than looping forever.
            waves.push((0..n).filter(|&i| !assigned[i]).collect());
            break;
        }
        for &i in &wave {
            assigned[i] = true;
            remaining -= 1;
            for &c in &dag.edges[i] {
                indeg[c] -= 1;
            }
        }
        waves.push(wave);
    }
    waves
}

/// Available task parallelism: the maximum wave width.
pub fn max_wave_width(waves: &[Vec<usize>]) -> usize {
    waves.iter().map(Vec::len).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::SequentialProfiler;
    use dp_types::{loc::loc, MemAccess, TraceEvent, Tracer};

    fn sec(id: u32, b: u32, e: u32) -> SectionMeta {
        SectionMeta { id, name: format!("s{id}"), begin: loc(1, b), end: loc(1, e) }
    }

    /// A: writes X (lines 1-3); B: writes Y (4-6, independent of A);
    /// C: reads X and Y (7-9).
    fn diamond() -> ProfileResult {
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::Access(MemAccess::write(0x10, 1, loc(1, 2), 1, 0)));
        p.event(TraceEvent::Access(MemAccess::write(0x20, 2, loc(1, 5), 2, 0)));
        p.event(TraceEvent::Access(MemAccess::read(0x10, 3, loc(1, 8), 1, 0)));
        p.event(TraceEvent::Access(MemAccess::read(0x20, 4, loc(1, 8), 2, 0)));
        p.finish()
    }

    #[test]
    fn independent_sections_share_a_wave() {
        let secs = [sec(0, 1, 3), sec(1, 4, 6), sec(2, 7, 9)];
        let dag = section_dag(&diamond(), &secs);
        assert_eq!(dag.edges[0], vec![2]);
        assert_eq!(dag.edges[1], vec![2]);
        assert!(dag.edges[2].is_empty());
        let waves = schedule_waves(&dag);
        assert_eq!(waves, vec![vec![0, 1], vec![2]]);
        assert_eq!(max_wave_width(&waves), 2);
    }

    #[test]
    fn chain_serializes() {
        // A -> B -> C via RAW chains.
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::Access(MemAccess::write(0x10, 1, loc(1, 2), 1, 0)));
        p.event(TraceEvent::Access(MemAccess::read(0x10, 2, loc(1, 5), 1, 0)));
        p.event(TraceEvent::Access(MemAccess::write(0x20, 3, loc(1, 5), 2, 0)));
        p.event(TraceEvent::Access(MemAccess::read(0x20, 4, loc(1, 8), 2, 0)));
        let r = p.finish();
        let secs = [sec(0, 1, 3), sec(1, 4, 6), sec(2, 7, 9)];
        let waves = schedule_waves(&section_dag(&r, &secs));
        assert_eq!(waves, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(max_wave_width(&waves), 1);
    }

    #[test]
    fn backward_raw_is_not_an_edge() {
        // A reads what C wrote (previous instance of an enclosing loop):
        // must not create a C -> A edge that would deadlock the layering.
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::Access(MemAccess::write(0x10, 1, loc(1, 8), 1, 0)));
        p.event(TraceEvent::Access(MemAccess::read(0x10, 2, loc(1, 2), 1, 0)));
        let r = p.finish();
        let secs = [sec(0, 1, 3), sec(2, 7, 9)];
        let dag = section_dag(&r, &secs);
        assert!(dag.edges.iter().all(Vec::is_empty));
        let waves = schedule_waves(&dag);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 2);
    }

    #[test]
    fn empty_input() {
        let dag = section_dag(&diamond(), &[]);
        assert!(schedule_waves(&dag).is_empty());
        assert_eq!(max_wave_width(&[]), 0);
    }
}
