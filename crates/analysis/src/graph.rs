//! The dependence graph representation.
//!
//! The paper's conclusion announces "an integrated program-analysis
//! framework ... \[that\] reorganizes profiled data into multiple
//! representations, including dynamic execution tree, call tree,
//! dependence graph, loop table". This module is the dependence-graph
//! representation: nodes are statements (source location + thread), edges
//! are the merged dependences, and the usual graph queries — neighbours,
//! reachability over true dependences, Graphviz export — come built in.

use dp_core::ProfileResult;
use dp_types::{DepFlags, DepType, SinkKey, ThreadId};
use dp_types::{FxHashMap, FxHashSet, SourceLoc};
use std::collections::BTreeSet;

/// A statement node: location + target thread.
pub type Node = SinkKey;

/// One edge of the dependence graph, `source -> sink` in dataflow
/// direction (the *earlier* access points at the *later* one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GraphEdge {
    /// The earlier access (producer for RAW).
    pub from: Node,
    /// The later access (consumer for RAW).
    pub to: Node,
    /// Dependence type.
    pub dtype: DepType,
    /// Dynamic occurrence count.
    pub count: u64,
    /// Loop-carried anywhere?
    pub carried: bool,
}

/// Immutable dependence graph built from a profiling result.
#[derive(Debug, Default)]
pub struct DepGraph {
    edges: Vec<GraphEdge>,
    out: FxHashMap<Node, Vec<usize>>,
    inc: FxHashMap<Node, Vec<usize>>,
    nodes: BTreeSet<Node>,
}

impl DepGraph {
    /// Builds the graph from a result, dropping INIT records (they are
    /// markers, not dependences).
    pub fn build(result: &ProfileResult) -> Self {
        let mut g = DepGraph::default();
        for (d, v) in result.deps.dependences() {
            if d.edge.dtype == DepType::Init {
                continue;
            }
            let from = SinkKey { loc: d.edge.source_loc, thread: d.edge.source_thread };
            let to = d.sink;
            let idx = g.edges.len();
            g.edges.push(GraphEdge {
                from,
                to,
                dtype: d.edge.dtype,
                count: v.count,
                carried: d.edge.flags.contains(DepFlags::LOOP_CARRIED),
            });
            g.out.entry(from).or_default().push(idx);
            g.inc.entry(to).or_default().push(idx);
            g.nodes.insert(from);
            g.nodes.insert(to);
        }
        g
    }

    /// All nodes, ordered.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All edges.
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// Outgoing edges of `n` (statements that depend on `n`).
    pub fn successors(&self, n: Node) -> impl Iterator<Item = &GraphEdge> {
        self.out.get(&n).into_iter().flatten().map(move |&i| &self.edges[i])
    }

    /// Incoming edges of `n` (statements `n` depends on).
    pub fn predecessors(&self, n: Node) -> impl Iterator<Item = &GraphEdge> {
        self.inc.get(&n).into_iter().flatten().map(move |&i| &self.edges[i])
    }

    /// Statements reachable from `n` through RAW edges only — the
    /// dataflow cone of influence of the statement.
    pub fn raw_reachable(&self, n: Node) -> FxHashSet<Node> {
        let mut seen: FxHashSet<Node> = FxHashSet::default();
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            for e in self.successors(cur) {
                if e.dtype == DepType::Raw && seen.insert(e.to) {
                    stack.push(e.to);
                }
            }
        }
        seen
    }

    /// Length (in edges) of the longest acyclic RAW chain — a crude
    /// critical-path proxy (what Kremlin computes from its profiles).
    pub fn raw_depth(&self) -> usize {
        // Memoized DFS over RAW edges; cycles (loop-carried self-deps)
        // are cut by the visiting set.
        fn depth(
            g: &DepGraph,
            n: Node,
            memo: &mut FxHashMap<Node, usize>,
            visiting: &mut FxHashSet<Node>,
        ) -> usize {
            if let Some(&d) = memo.get(&n) {
                return d;
            }
            if !visiting.insert(n) {
                return 0;
            }
            let best = g
                .successors(n)
                .filter(|e| e.dtype == DepType::Raw && e.to != n)
                .map(|e| 1 + depth(g, e.to, memo, visiting))
                .max()
                .unwrap_or(0);
            visiting.remove(&n);
            memo.insert(n, best);
            best
        }
        let mut memo = FxHashMap::default();
        let mut visiting = FxHashSet::default();
        self.nodes.iter().map(|&n| depth(self, n, &mut memo, &mut visiting)).max().unwrap_or(0)
    }

    /// Graphviz `dot` rendering (RAW solid, WAR dashed, WAW dotted;
    /// loop-carried edges in red).
    pub fn to_dot(&self, show_threads: bool) -> String {
        let mut s = String::from("digraph deps {\n  rankdir=TB;\n  node [shape=box];\n");
        let name = |n: &Node| {
            if show_threads {
                format!("\"{}|{}\"", n.loc, n.thread)
            } else {
                format!("\"{}\"", n.loc)
            }
        };
        for e in &self.edges {
            let style = match e.dtype {
                DepType::Raw => "solid",
                DepType::War => "dashed",
                DepType::Waw | DepType::Init => "dotted",
            };
            let color = if e.carried { "red" } else { "black" };
            s.push_str(&format!(
                "  {} -> {} [style={style}, color={color}, label=\"{} x{}\"];\n",
                name(&e.from),
                name(&e.to),
                e.dtype,
                e.count
            ));
        }
        s.push_str("}\n");
        s
    }

    /// Node and edge counts.
    pub fn size(&self) -> (usize, usize) {
        (self.nodes.len(), self.edges.len())
    }
}

/// Convenience: build a node.
pub fn node(loc: SourceLoc, thread: ThreadId) -> Node {
    SinkKey { loc, thread }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::SequentialProfiler;
    use dp_types::{loc::loc, MemAccess, TraceEvent, Tracer};

    /// chain: line1 writes A, line2 reads A writes B, line3 reads B.
    fn chain_result() -> ProfileResult {
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), 1, 0)));
        p.event(TraceEvent::Access(MemAccess::read(0x8, 2, loc(1, 2), 1, 0)));
        p.event(TraceEvent::Access(MemAccess::write(0x10, 3, loc(1, 2), 2, 0)));
        p.event(TraceEvent::Access(MemAccess::read(0x10, 4, loc(1, 3), 2, 0)));
        p.finish()
    }

    #[test]
    fn build_and_query() {
        let r = chain_result();
        let g = DepGraph::build(&r);
        let (nodes, edges) = g.size();
        assert_eq!(edges, 2); // two RAWs (INITs dropped)
        assert_eq!(nodes, 3);
        let n1 = node(loc(1, 1), 0);
        let succ: Vec<_> = g.successors(n1).collect();
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].to, node(loc(1, 2), 0));
        assert_eq!(g.predecessors(node(loc(1, 3), 0)).count(), 1);
    }

    #[test]
    fn raw_reachability_transitive() {
        let r = chain_result();
        let g = DepGraph::build(&r);
        let cone = g.raw_reachable(node(loc(1, 1), 0));
        assert!(cone.contains(&node(loc(1, 2), 0)));
        assert!(cone.contains(&node(loc(1, 3), 0)));
        assert_eq!(cone.len(), 2);
    }

    #[test]
    fn raw_depth_of_chain() {
        let r = chain_result();
        let g = DepGraph::build(&r);
        assert_eq!(g.raw_depth(), 2);
    }

    #[test]
    fn dot_export_mentions_styles() {
        let r = chain_result();
        let g = DepGraph::build(&r);
        let dot = g.to_dot(false);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("style=solid"));
        assert!(dot.contains("\"1:1\" -> \"1:2\""));
    }

    #[test]
    fn self_loop_cycle_does_not_hang() {
        // reduction: line5 reads+writes same address repeatedly
        let mut p = SequentialProfiler::perfect();
        for i in 0..5u64 {
            p.event(TraceEvent::Access(MemAccess::read(0x8, i * 2 + 1, loc(1, 5), 1, 0)));
            p.event(TraceEvent::Access(MemAccess::write(0x8, i * 2 + 2, loc(1, 5), 1, 0)));
        }
        let r = p.finish();
        let g = DepGraph::build(&r);
        assert_eq!(g.raw_depth(), 0); // only a self-loop, cut by cycle guard
    }
}
