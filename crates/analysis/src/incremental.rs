//! Online (incremental) analysis state — live loop-parallelism,
//! communication and race reports over a still-running profile.
//!
//! Every pass in this crate runs post-hoc over the merged dependence
//! map; a long-lived DPSV session could not answer "is this loop
//! parallelizable?" until `Finish`. This module maintains the same
//! answers *while chunks merge*: the engine drains
//! [`AnalysisDelta`]s from its dependence stores (see
//! [`DepStore::enable_delta`](dp_core::DepStore::enable_delta)) and
//! folds them into an [`OnlineAnalysis`], which can snapshot an
//! [`OnlineReport`] at any moment without stalling the feed.
//!
//! Three invariants make this sound:
//!
//! - **Delta composition follows the merge rules.** Occurrence counts
//!   add, qualifier flags OR, carrier sets union — exactly how
//!   [`DepStore::merge`](dp_core::DepStore::merge) combines worker
//!   maps, so deltas from different workers and different intervals
//!   fold in any order.
//! - **Monotone demotion.** Dependence evidence only accumulates: a
//!   loop's blocker set only grows, so its verdict can only be demoted
//!   (DOALL → reduction → sequential), never promoted. The fold
//!   asserts this in debug builds.
//! - **Final-state equivalence.** Once every chunk has been folded,
//!   [`OnlineAnalysis::report`] equals [`posthoc_report`] over the
//!   finished [`ProfileResult`] — dependence for dependence. The fuzz
//!   oracle and the engine tests hold this bar on every workload.

use crate::comm::{communication_matrix, CommMatrix};
use crate::parallelism::{classify_loops, LoopClass, LoopMeta};
use crate::races::{find_races, RaceHint};
use dp_core::{AnalysisDelta, ProfileResult};
use dp_types::{DepFlags, DepType, Interner, LoopId, SinkKey, SourceLoc, ThreadId, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// Merge key of a mirrored edge: the store's `(sink, edge)` identity.
type TotalKey = (SinkKey, (DepType, SourceLoc, ThreadId, VarId));

/// Per-loop incremental state.
#[derive(Debug, Clone, Default)]
struct IncLoop {
    /// A loop record has been folded (the loop executed).
    executed: bool,
    /// Dynamic instances so far.
    instances: u64,
    /// Iterations summed over instances so far.
    iterations: u64,
    /// Carried-RAW blocker records `(sink, source, var)` — grows
    /// monotonically, which is what makes demotion one-way.
    blockers: BTreeSet<(SourceLoc, SourceLoc, VarId)>,
}

/// Live analysis state, fed by [`AnalysisDelta`]s.
///
/// Memory is proportional to the *merged* dependence map (small, per
/// the paper's 10⁵ merge factor), not to the event stream.
#[derive(Debug, Clone, Default)]
pub struct OnlineAnalysis {
    /// Mirror of the merged map: cumulative count and flag union per
    /// edge. Carrier sets are not mirrored — they are consumed into
    /// the per-loop blocker sets at fold time.
    totals: BTreeMap<TotalKey, (u64, DepFlags)>,
    /// Per-loop state, keyed by every loop id seen as a record or a
    /// carrier.
    loops: BTreeMap<LoopId, IncLoop>,
    /// Cross-thread RAW volume per `(producer, consumer)` pair.
    comm: BTreeMap<(ThreadId, ThreadId), u64>,
    /// Largest thread id observed on a cross-thread RAW, driving the
    /// matrix dimension exactly like [`observed_comm_dim`].
    max_comm_thread: Option<ThreadId>,
    /// Deltas folded (diagnostics).
    deltas_folded: u64,
    /// Last reported class rank per loop, for the monotone-demotion
    /// assertion.
    prev_rank: BTreeMap<LoopId, u8>,
}

impl OnlineAnalysis {
    /// Fresh, empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of deltas folded so far.
    pub fn deltas_folded(&self) -> u64 {
        self.deltas_folded
    }

    /// Folds one delta: counts add, flags OR, carriers union into the
    /// blocker sets. Order-insensitive across workers and intervals.
    pub fn fold(&mut self, delta: &AnalysisDelta) {
        self.deltas_folded += 1;
        for e in &delta.edges {
            let (dtype, source_loc, source_thread, var) = e.key;
            let t = self.totals.entry((e.sink, e.key)).or_insert((0, DepFlags::empty()));
            t.0 += e.count_delta;
            t.1 |= e.flags;
            // Every carrier marks its loop as observed; a carried RAW
            // additionally contributes a blocker record.
            let blocking = dtype == DepType::Raw && e.flags.contains(DepFlags::LOOP_CARRIED);
            for &l in &e.carriers {
                let entry = self.loops.entry(l).or_default();
                if blocking {
                    entry.blockers.insert((e.sink.loc, source_loc, var));
                }
            }
            if dtype == DepType::Raw && source_thread != e.sink.thread {
                *self.comm.entry((source_thread, e.sink.thread)).or_insert(0) += e.count_delta;
                let hi = source_thread.max(e.sink.thread);
                self.max_comm_thread = Some(self.max_comm_thread.map_or(hi, |m| m.max(hi)));
            }
        }
        for l in &delta.loops {
            let entry = self.loops.entry(l.id).or_default();
            entry.executed = true;
            entry.instances += l.instances_delta;
            entry.iterations += l.iters_delta;
        }
    }

    /// Snapshots the current report. Verdicts follow the post-hoc
    /// classifier exactly; the monotone-demotion rule (a verdict's
    /// rank never increases once the loop has executed) is asserted in
    /// debug builds and recorded for the next snapshot.
    pub fn report(&mut self) -> OnlineReport {
        let loops = self
            .loops
            .iter()
            .map(|(&id, st)| {
                let mut all_self = true;
                for &(sink, src, _) in &st.blockers {
                    if sink != src {
                        all_self = false;
                    }
                }
                let class = if !st.executed {
                    LoopClass::NotExecuted
                } else if st.blockers.is_empty() {
                    LoopClass::Doall
                } else if all_self {
                    LoopClass::Reduction
                } else {
                    LoopClass::Sequential
                };
                let rank = class_rank(class);
                if let Some(&prev) = self.prev_rank.get(&id) {
                    debug_assert!(
                        rank <= prev || prev == class_rank(LoopClass::NotExecuted),
                        "loop {id} promoted {prev} -> {rank}: verdicts must only demote"
                    );
                }
                OnlineLoopRow {
                    id,
                    name: format!("loop#{id}"),
                    class,
                    instances: st.instances,
                    iterations: st.iterations,
                    blockers: st.blockers.iter().copied().collect(),
                }
            })
            .collect::<Vec<_>>();
        for row in &loops {
            self.prev_rank.insert(row.id, class_rank(row.class));
        }
        let dim = self.max_comm_thread.map_or(0, |m| m as usize + 1);
        let mut comm = CommMatrix::zero(dim);
        for (&(p, c), &count) in &self.comm {
            comm.add(p, c, count);
        }
        // Same base order as `DepStore::dependences` (the totals map is
        // keyed identically), so the stable sort reproduces
        // `find_races` exactly.
        let mut races: Vec<RaceHint> = self
            .totals
            .iter()
            .filter(|(_, (_, flags))| flags.contains(DepFlags::REVERSED))
            .map(|(&(sink, (dtype, source_loc, source_thread, var)), &(count, _))| RaceHint {
                var,
                dtype,
                sink: (sink.loc, sink.thread),
                source: (source_loc, source_thread),
                occurrences: count,
            })
            .collect();
        races.sort_by_key(|r| (r.sink, r.source));
        OnlineReport { loops, comm, races }
    }
}

/// Demotion ranking: higher is better, and a loop's rank never
/// increases once it has executed.
fn class_rank(class: LoopClass) -> u8 {
    match class {
        LoopClass::Doall => 3,
        LoopClass::Reduction => 2,
        LoopClass::Sequential => 1,
        LoopClass::NotExecuted => 0,
    }
}

/// One loop row of an [`OnlineReport`] — Table-II-style verdict joined
/// with runtime statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineLoopRow {
    /// Static loop id.
    pub id: LoopId,
    /// Synthetic name (`loop#<id>`); sessions carry no static loop
    /// table, so ids are the stable handle.
    pub name: String,
    /// Dependence-test verdict.
    pub class: LoopClass,
    /// Dynamic instances observed.
    pub instances: u64,
    /// Iterations summed over instances.
    pub iterations: u64,
    /// Carried-RAW blockers `(sink, source, var)`, sorted and deduped.
    pub blockers: Vec<(SourceLoc, SourceLoc, VarId)>,
}

/// A full live-analysis snapshot: loop classification, communication
/// matrix and race hints. Two reports over the same dependence
/// evidence compare equal ([`PartialEq`]), which is how the
/// incremental == post-hoc bar is enforced everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineReport {
    /// One row per observed loop, in id order.
    pub loops: Vec<OnlineLoopRow>,
    /// Producer × consumer matrix over cross-thread RAW dependences,
    /// sized by the largest communicating thread id.
    pub comm: CommMatrix,
    /// Reversal-flagged dependences, in [`find_races`] order.
    pub races: Vec<RaceHint>,
}

impl OnlineReport {
    /// Serializes the report (or a subset of its sections) as JSON for
    /// the DPSV `QueryResult` frame. Variable ids are resolved through
    /// `interner` where possible (`var<N>` fallback). Hand-rolled —
    /// the output is small and the repo carries no JSON dependency.
    pub fn to_json(&self, interner: &Interner, loops: bool, comm: bool, races: bool) -> String {
        let var_name =
            |v: VarId| interner.get(v).map(str::to_owned).unwrap_or_else(|| format!("var{v}"));
        let mut parts: Vec<String> = Vec::new();
        if loops {
            let rows: Vec<String> = self
                .loops
                .iter()
                .map(|r| {
                    let blockers: Vec<String> = r
                        .blockers
                        .iter()
                        .map(|&(sink, src, var)| {
                            format!(
                                "{{\"sink\":{},\"source\":{},\"var\":{}}}",
                                json_string(&sink.to_string()),
                                json_string(&src.to_string()),
                                json_string(&var_name(var))
                            )
                        })
                        .collect();
                    format!(
                        "{{\"id\":{},\"name\":{},\"class\":{},\"instances\":{},\
                         \"iterations\":{},\"blockers\":[{}]}}",
                        r.id,
                        json_string(&r.name),
                        json_string(class_name(r.class)),
                        r.instances,
                        r.iterations,
                        blockers.join(",")
                    )
                })
                .collect();
            parts.push(format!("\"loops\":[{}]", rows.join(",")));
        }
        if comm {
            let n = self.comm.dim();
            let rows: Vec<String> = (0..n)
                .map(|p| {
                    let cells: Vec<String> = (0..n)
                        .map(|c| self.comm.get(p as ThreadId, c as ThreadId).to_string())
                        .collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            parts.push(format!(
                "\"comm\":{{\"dim\":{n},\"total\":{},\"counts\":[{}]}}",
                self.comm.total(),
                rows.join(",")
            ));
        }
        if races {
            let rows: Vec<String> = self
                .races
                .iter()
                .map(|r| {
                    format!(
                        "{{\"dtype\":{},\"var\":{},\"sink\":{},\"sink_thread\":{},\
                         \"source\":{},\"source_thread\":{},\"occurrences\":{}}}",
                        json_string(dtype_name(r.dtype)),
                        json_string(&var_name(r.var)),
                        json_string(&r.sink.0.to_string()),
                        r.sink.1,
                        json_string(&r.source.0.to_string()),
                        r.source.1,
                        r.occurrences
                    )
                })
                .collect();
            parts.push(format!("\"races\":[{}]", rows.join(",")));
        }
        format!("{{{}}}", parts.join(","))
    }
}

/// Stable class names used in reports and JSON (the loop-table
/// vocabulary).
pub fn class_name(class: LoopClass) -> &'static str {
    match class {
        LoopClass::Doall => "DOALL",
        LoopClass::Reduction => "reduction",
        LoopClass::Sequential => "sequential",
        LoopClass::NotExecuted => "not-run",
    }
}

fn dtype_name(d: DepType) -> &'static str {
    match d {
        DepType::Raw => "RAW",
        DepType::War => "WAR",
        DepType::Waw => "WAW",
        DepType::Init => "INIT",
    }
}

/// JSON string literal with minimal escaping (quotes, backslash,
/// control characters).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Loop metadata observable from a profile alone: every loop that left
/// a record or appears in a carrier set, with synthetic `loop#<id>`
/// names. This is what a session-side analysis can know without the
/// program's static loop table — and what [`OnlineAnalysis`] mirrors.
pub fn observed_loop_metas(result: &ProfileResult) -> Vec<LoopMeta> {
    let mut ids: BTreeSet<LoopId> = result.deps.loops().map(|(&id, _)| id).collect();
    for (_, val) in result.deps.dependences() {
        ids.extend(val.carriers.iter().copied());
    }
    ids.into_iter().map(|id| LoopMeta { id, name: format!("loop#{id}"), omp: false }).collect()
}

/// Communication-matrix dimension observable from a profile: one past
/// the largest thread id participating in a cross-thread RAW (0 when
/// there is no cross-thread communication).
pub fn observed_comm_dim(result: &ProfileResult) -> usize {
    result
        .deps
        .dependences()
        .filter(|(d, _)| d.edge.dtype == DepType::Raw && d.edge.source_thread != d.sink.thread)
        .map(|(d, _)| d.edge.source_thread.max(d.sink.thread) as usize + 1)
        .max()
        .unwrap_or(0)
}

/// The post-hoc twin of [`OnlineAnalysis::report`]: runs the real
/// passes ([`classify_loops`], [`communication_matrix`],
/// [`find_races`]) over a finished result and shapes their output into
/// an [`OnlineReport`]. The equivalence bar everywhere is
/// `online.report() == posthoc_report(&final_result)`.
pub fn posthoc_report(result: &ProfileResult) -> OnlineReport {
    let metas = observed_loop_metas(result);
    let verdicts = classify_loops(result, &metas);
    let loops = verdicts
        .into_iter()
        .map(|v| {
            let rec = result.deps.loop_record(v.meta.id);
            let blockers: BTreeSet<(SourceLoc, SourceLoc, VarId)> =
                v.blockers.iter().copied().collect();
            OnlineLoopRow {
                id: v.meta.id,
                name: v.meta.name,
                class: v.class,
                instances: rec.map_or(0, |r| r.instances),
                iterations: v.iterations,
                blockers: blockers.into_iter().collect(),
            }
        })
        .collect();
    let comm = communication_matrix(result, observed_comm_dim(result));
    let races = find_races(result);
    OnlineReport { loops, comm, races }
}

/// Builds the full catch-up delta of a finished store: everything it
/// holds, as one delta (used by tests and the post-hoc fallback path
/// of [`crate::framework::IncrementalAnalysis`] consumers).
pub fn full_delta(result: &ProfileResult) -> AnalysisDelta {
    let mut mirror = dp_core::DepStore::new();
    mirror.enable_delta();
    mirror.merge(result.deps.clone());
    mirror.take_delta()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::{DepStore, SequentialProfiler};
    use dp_types::{loc::loc, MemAccess, TraceEvent, Tracer};

    fn fold_result(result: &ProfileResult) -> OnlineAnalysis {
        let mut online = OnlineAnalysis::new();
        online.fold(&full_delta(result));
        online
    }

    fn mixed_profile() -> ProfileResult {
        let mut p = SequentialProfiler::perfect();
        // doall loop 0
        p.event(TraceEvent::LoopBegin { loop_id: 0, loc: loc(1, 1), thread: 0, ts: 1 });
        for it in 0..4u64 {
            let t = 10 + it * 10;
            p.event(TraceEvent::LoopIter { loop_id: 0, iter: it, thread: 0, ts: t });
            p.event(TraceEvent::Access(MemAccess::write(0x100 + it * 8, t + 1, loc(1, 2), 1, 0)));
            p.event(TraceEvent::Access(MemAccess::read(0x100 + it * 8, t + 2, loc(1, 3), 1, 0)));
        }
        p.event(TraceEvent::LoopEnd { loop_id: 0, loc: loc(1, 4), iters: 4, thread: 0, ts: 99 });
        // reduction loop 1
        p.event(TraceEvent::LoopBegin { loop_id: 1, loc: loc(1, 5), thread: 0, ts: 100 });
        for it in 0..4u64 {
            let t = 110 + it * 10;
            p.event(TraceEvent::LoopIter { loop_id: 1, iter: it, thread: 0, ts: t });
            p.event(TraceEvent::Access(MemAccess::read(0x900, t + 1, loc(1, 6), 2, 0)));
            p.event(TraceEvent::Access(MemAccess::write(0x900, t + 2, loc(1, 6), 2, 0)));
        }
        p.event(TraceEvent::LoopEnd { loop_id: 1, loc: loc(1, 7), iters: 4, thread: 0, ts: 999 });
        // cross-thread producer/consumer
        for i in 0..5u64 {
            p.event(TraceEvent::Access(MemAccess::write(0x2000, 2000 + i * 2, loc(2, 1), 3, 1)));
            p.event(TraceEvent::Access(MemAccess::read(0x2000, 2001 + i * 2, loc(2, 2), 3, 2)));
        }
        p.finish()
    }

    #[test]
    fn folded_report_equals_posthoc() {
        let r = mixed_profile();
        let mut online = fold_result(&r);
        assert_eq!(online.report(), posthoc_report(&r));
    }

    #[test]
    fn incremental_folding_is_interval_insensitive() {
        // Feed the same program in two halves, draining between them:
        // the folded end state must match the one-shot fold.
        let mut p = SequentialProfiler::perfect();
        p.enable_online();
        let mut online = OnlineAnalysis::new();
        p.event(TraceEvent::LoopBegin { loop_id: 2, loc: loc(1, 8), thread: 0, ts: 1 });
        for it in 0..2u64 {
            let t = 10 + it * 10;
            p.event(TraceEvent::LoopIter { loop_id: 2, iter: it, thread: 0, ts: t });
            p.event(TraceEvent::Access(MemAccess::read(0x200 + it * 8, t + 1, loc(1, 9), 3, 0)));
            p.event(TraceEvent::Access(MemAccess::write(
                0x200 + (it + 1) * 8,
                t + 2,
                loc(1, 10),
                3,
                0,
            )));
        }
        online.fold(&p.take_delta());
        let mid = online.clone().report();
        for it in 2..4u64 {
            let t = 10 + it * 10;
            p.event(TraceEvent::LoopIter { loop_id: 2, iter: it, thread: 0, ts: t });
            p.event(TraceEvent::Access(MemAccess::read(0x200 + it * 8, t + 1, loc(1, 9), 3, 0)));
            p.event(TraceEvent::Access(MemAccess::write(
                0x200 + (it + 1) * 8,
                t + 2,
                loc(1, 10),
                3,
                0,
            )));
        }
        p.event(TraceEvent::LoopEnd { loop_id: 2, loc: loc(1, 11), iters: 4, thread: 0, ts: 999 });
        online.fold(&p.take_delta());
        let r = p.finish();
        assert_eq!(online.report(), posthoc_report(&r));
        // And the mid-run verdict was already (or became) sequential —
        // never the other way around.
        let mid_rank = mid.loops.iter().find(|l| l.id == 2).map(|l| class_rank(l.class));
        let end_rank =
            online.report().loops.iter().find(|l| l.id == 2).map(|l| class_rank(l.class)).unwrap();
        // NotExecuted (rank 0) may rise once the record arrives; any
        // executed verdict only demotes.
        match mid_rank {
            None | Some(0) => {}
            Some(m) => assert!(end_rank <= m, "verdict promoted {m} -> {end_rank}"),
        }
    }

    #[test]
    fn verdicts_only_demote() {
        // First interval: loop looks DOALL. Second interval: a carried
        // RAW arrives and demotes it to sequential.
        let mut store = DepStore::new();
        store.enable_delta();
        store.record_loop(5, loc(1, 1), loc(1, 9), 4);
        store.add(
            SinkKey { loc: loc(1, 3), thread: 0 },
            DepType::Raw,
            loc(1, 2),
            0,
            1,
            DepFlags::INTRA_ITERATION,
            None,
        );
        let mut online = OnlineAnalysis::new();
        online.fold(&store.take_delta());
        let first = online.report();
        assert_eq!(first.loops.len(), 1);
        assert_eq!(first.loops[0].class, LoopClass::Doall);
        store.add(
            SinkKey { loc: loc(1, 3), thread: 0 },
            DepType::Raw,
            loc(1, 2),
            0,
            1,
            DepFlags::LOOP_CARRIED,
            Some(5),
        );
        online.fold(&store.take_delta());
        let second = online.report();
        assert_eq!(second.loops[0].class, LoopClass::Sequential);
        assert_eq!(second.loops[0].blockers, vec![(loc(1, 3), loc(1, 2), 1)]);
    }

    #[test]
    fn race_hints_match_posthoc_order_and_counts() {
        // REVERSED flags never arise in served (serial-engine) sessions,
        // so drive the race path with a hand-built store: several
        // reversal-flagged edges whose post-hoc sort order differs from
        // the store's (dtype-major) iteration order.
        let mut store = DepStore::new();
        let sink = SinkKey { loc: loc(3, 9), thread: 2 };
        for _ in 0..3 {
            store.add(sink, DepType::War, loc(3, 1), 1, 7, DepFlags::REVERSED, None);
        }
        store.add(sink, DepType::Raw, loc(3, 5), 1, 8, DepFlags::REVERSED, None);
        store.add(sink, DepType::Waw, loc(3, 5), 1, 8, DepFlags::REVERSED, None);
        store.add(
            SinkKey { loc: loc(2, 2), thread: 1 },
            DepType::Raw,
            loc(2, 1),
            0,
            9,
            DepFlags::empty(),
            None,
        );
        let result = ProfileResult { deps: store, ..Default::default() };
        let mut online = fold_result(&result);
        let report = online.report();
        assert_eq!(report.races, find_races(&result));
        assert_eq!(report.races.len(), 3);
        assert_eq!(report.races[0].occurrences, 3, "merged occurrences preserved");
        assert_eq!(report, posthoc_report(&result));
    }

    #[test]
    fn comm_matrix_dim_tracks_observed_threads() {
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), 1, 3)));
        p.event(TraceEvent::Access(MemAccess::read(0x8, 2, loc(1, 2), 1, 5)));
        let r = p.finish();
        let mut online = fold_result(&r);
        let report = online.report();
        assert_eq!(report.comm.dim(), 6);
        assert_eq!(report.comm.get(3, 5), 1);
        assert_eq!(report, posthoc_report(&r));
        // A purely sequential profile has a zero-dimension matrix.
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::Access(MemAccess::write(0x8, 1, loc(1, 1), 1, 0)));
        p.event(TraceEvent::Access(MemAccess::read(0x8, 2, loc(1, 2), 1, 0)));
        let r = p.finish();
        let report = fold_result(&r).report();
        assert_eq!(report.comm.dim(), 0);
        assert_eq!(report, posthoc_report(&r));
    }

    #[test]
    fn json_snapshot_has_expected_shape() {
        let r = mixed_profile();
        let mut online = fold_result(&r);
        let report = online.report();
        let mut interner = Interner::new();
        interner.intern("a");
        interner.intern("acc");
        interner.intern("buf");
        let js = report.to_json(&interner, true, true, true);
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"loops\":["), "{js}");
        assert!(js.contains("\"class\":\"DOALL\""), "{js}");
        assert!(js.contains("\"class\":\"reduction\""), "{js}");
        assert!(js.contains("\"var\":\"acc\""), "{js}");
        assert!(js.contains("\"comm\":{\"dim\":3"), "{js}");
        assert!(js.contains("\"races\":[]"), "{js}");
        // Section selection drops the other keys.
        let only_comm = report.to_json(&interner, false, true, false);
        assert!(!only_comm.contains("\"loops\"") && only_comm.contains("\"comm\""));
        // Escaping.
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
