//! Loop parallelism discovery (Section VII-A, Table II).
//!
//! The DiscoPoP use case: a loop is potentially parallelizable (DOALL) if
//! the profile shows no RAW dependence carried across its iterations.
//! Loop-carried WAR/WAW dependences do not block parallelization — they
//! are removable by privatization — and a loop whose only carried RAW
//! dependences are self-dependences on an accumulator (`sink == source`
//! location) is a *reduction*: parallelizable with an OpenMP `reduction`
//! clause but, by dependence evidence alone, not DOALL. This is exactly
//! why DiscoPoP identifies 136 of the 147 annotated NAS loops: the gap is
//! reductions and data-dependent updates (IS, CG, FT).

use dp_core::ProfileResult;
use dp_types::{DepFlags, DepType, LoopId, SourceLoc, VarId};

/// Static loop metadata the analysis needs (decoupled from the trace
/// substrate; build it from `Program::loops`).
#[derive(Debug, Clone)]
pub struct LoopMeta {
    /// Loop id as it appears in the profile's carrier sets.
    pub id: LoopId,
    /// Human-readable name.
    pub name: String,
    /// Ground truth: annotated parallel in the OpenMP version.
    pub omp: bool,
}

/// Dependence-test verdict for one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopClass {
    /// No loop-carried RAW: parallelizable (identified).
    Doall,
    /// Carried RAW only via accumulator self-dependences: an OpenMP
    /// `reduction` candidate, but not identified by the dependence test.
    Reduction,
    /// Carried RAW through memory: sequential.
    Sequential,
    /// The loop never executed in this profile.
    NotExecuted,
}

/// Analysis outcome for one loop.
#[derive(Debug, Clone)]
pub struct LoopVerdict {
    /// The loop.
    pub meta: LoopMeta,
    /// Classification.
    pub class: LoopClass,
    /// Carried RAW `(sink, source, variable)` records that block DOALL
    /// (resolve the variable through the program's interner).
    pub blockers: Vec<(SourceLoc, SourceLoc, VarId)>,
    /// Iterations observed (summed over instances).
    pub iterations: u64,
}

impl LoopVerdict {
    /// "Identified as parallelizable" in Table II terms.
    pub fn identified(&self) -> bool {
        self.class == LoopClass::Doall
    }
}

/// Classifies every loop in `loops` against a profiling result.
pub fn classify_loops(result: &ProfileResult, loops: &[LoopMeta]) -> Vec<LoopVerdict> {
    loops
        .iter()
        .map(|m| {
            let mut blockers = Vec::new();
            let mut all_self = true;
            for (d, val) in result.deps.dependences() {
                if d.edge.dtype != DepType::Raw
                    || !d.edge.flags.contains(DepFlags::LOOP_CARRIED)
                    || !val.carriers.contains(&m.id)
                {
                    continue;
                }
                blockers.push((d.sink.loc, d.edge.source_loc, d.edge.var));
                if d.sink.loc != d.edge.source_loc {
                    all_self = false;
                }
            }
            let rec = result.deps.loop_record(m.id);
            let iterations = rec.map_or(0, |r| r.total_iters);
            let class = if rec.is_none() {
                LoopClass::NotExecuted
            } else if blockers.is_empty() {
                LoopClass::Doall
            } else if all_self {
                LoopClass::Reduction
            } else {
                LoopClass::Sequential
            };
            LoopVerdict { meta: m.clone(), class, blockers, iterations }
        })
        .collect()
}

/// A variable blocking a loop only through carried WAR/WAW dependences:
/// giving each iteration (thread) a private copy removes the dependence —
/// the classic privatization transformation parallelization assistants
/// suggest alongside DOALL detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivatizationCandidate {
    /// The loop in question.
    pub loop_id: LoopId,
    /// Interned variable id (resolve via the program's interner).
    pub var: dp_types::VarId,
    /// Carried WAR occurrences.
    pub war: u64,
    /// Carried WAW occurrences.
    pub waw: u64,
}

/// Finds, for each loop, the variables whose only carried dependences are
/// WAR/WAW (privatizable). Variables that also carry a RAW through the
/// loop are excluded — privatization cannot fix a true dependence.
pub fn privatization_candidates(
    result: &ProfileResult,
    loops: &[LoopMeta],
) -> Vec<PrivatizationCandidate> {
    use std::collections::BTreeMap;
    // (loop, var) -> (war, waw, raw)
    let mut per: BTreeMap<(LoopId, dp_types::VarId), (u64, u64, u64)> = BTreeMap::new();
    for (d, val) in result.deps.dependences() {
        if !d.edge.flags.contains(DepFlags::LOOP_CARRIED) {
            continue;
        }
        for &l in &val.carriers {
            let e = per.entry((l, d.edge.var)).or_default();
            match d.edge.dtype {
                DepType::War => e.0 += val.count,
                DepType::Waw => e.1 += val.count,
                DepType::Raw => e.2 += val.count,
                DepType::Init => {}
            }
        }
    }
    let known: std::collections::BTreeSet<LoopId> = loops.iter().map(|m| m.id).collect();
    per.into_iter()
        .filter(|((l, _), (war, waw, raw))| {
            known.contains(l) && *raw == 0 && (*war > 0 || *waw > 0)
        })
        .map(|((loop_id, var), (war, waw, _))| PrivatizationCandidate { loop_id, var, war, waw })
        .collect()
}

/// Table II row for one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Row {
    /// `# OMP`: loops annotated parallel in the OpenMP version.
    pub omp: usize,
    /// `# identified`: annotated loops the dependence test accepts.
    pub identified: usize,
}

/// Computes the Table II row: of the OMP-annotated loops, how many are
/// identified (DOALL) by the dependence evidence in `result`.
pub fn table2_row(result: &ProfileResult, loops: &[LoopMeta]) -> Table2Row {
    let verdicts = classify_loops(result, loops);
    let omp: Vec<_> = verdicts.iter().filter(|v| v.meta.omp).collect();
    Table2Row { omp: omp.len(), identified: omp.iter().filter(|v| v.identified()).count() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::SequentialProfiler;
    use dp_types::{loc::loc, MemAccess, TraceEvent, Tracer};

    fn meta(id: LoopId, omp: bool) -> LoopMeta {
        LoopMeta { id, name: format!("loop{id}"), omp }
    }

    /// doall loop: each iteration touches its own address.
    fn doall_events() -> Vec<TraceEvent> {
        let mut evs = vec![TraceEvent::LoopBegin { loop_id: 0, loc: loc(1, 1), thread: 0, ts: 1 }];
        for it in 0..4u64 {
            let t = 10 + it * 10;
            evs.push(TraceEvent::LoopIter { loop_id: 0, iter: it, thread: 0, ts: t });
            evs.push(TraceEvent::Access(MemAccess::write(0x100 + it * 8, t + 1, loc(1, 2), 1, 0)));
            evs.push(TraceEvent::Access(MemAccess::read(0x100 + it * 8, t + 2, loc(1, 3), 1, 0)));
        }
        evs.push(TraceEvent::LoopEnd { loop_id: 0, loc: loc(1, 4), iters: 4, thread: 0, ts: 99 });
        evs
    }

    /// reduction loop: read+write the same scalar at one line.
    fn reduction_events() -> Vec<TraceEvent> {
        let mut evs =
            vec![TraceEvent::LoopBegin { loop_id: 1, loc: loc(1, 5), thread: 0, ts: 100 }];
        for it in 0..4u64 {
            let t = 110 + it * 10;
            evs.push(TraceEvent::LoopIter { loop_id: 1, iter: it, thread: 0, ts: t });
            evs.push(TraceEvent::Access(MemAccess::read(0x900, t + 1, loc(1, 6), 2, 0)));
            evs.push(TraceEvent::Access(MemAccess::write(0x900, t + 2, loc(1, 6), 2, 0)));
        }
        evs.push(TraceEvent::LoopEnd { loop_id: 1, loc: loc(1, 7), iters: 4, thread: 0, ts: 999 });
        evs
    }

    /// genuinely sequential: A[i] depends on A[i-1], different lines.
    fn recurrence_events() -> Vec<TraceEvent> {
        let mut evs =
            vec![TraceEvent::LoopBegin { loop_id: 2, loc: loc(1, 8), thread: 0, ts: 1000 }];
        for it in 0..4u64 {
            let t = 1010 + it * 10;
            evs.push(TraceEvent::LoopIter { loop_id: 2, iter: it, thread: 0, ts: t });
            // read previous element (written at line 10 last iteration)
            evs.push(TraceEvent::Access(MemAccess::read(0x200 + it * 8, t + 1, loc(1, 9), 3, 0)));
            evs.push(TraceEvent::Access(MemAccess::write(
                0x200 + (it + 1) * 8,
                t + 2,
                loc(1, 10),
                3,
                0,
            )));
        }
        evs.push(TraceEvent::LoopEnd {
            loop_id: 2,
            loc: loc(1, 11),
            iters: 4,
            thread: 0,
            ts: 9999,
        });
        evs
    }

    fn profile(evs: &[TraceEvent]) -> ProfileResult {
        let mut p = SequentialProfiler::perfect();
        for e in evs {
            p.event(*e);
        }
        p.finish()
    }

    #[test]
    fn doall_identified() {
        let r = profile(&doall_events());
        let v = classify_loops(&r, &[meta(0, true)]);
        assert_eq!(v[0].class, LoopClass::Doall);
        assert!(v[0].identified());
        assert_eq!(v[0].iterations, 4);
    }

    #[test]
    fn reduction_not_identified() {
        let r = profile(&reduction_events());
        let v = classify_loops(&r, &[meta(1, true)]);
        assert_eq!(v[0].class, LoopClass::Reduction);
        assert!(!v[0].identified());
        assert!(!v[0].blockers.is_empty());
    }

    #[test]
    fn recurrence_sequential() {
        let evs = recurrence_events();
        let r = profile(&evs);
        let v = classify_loops(&r, &[meta(2, false)]);
        assert_eq!(v[0].class, LoopClass::Sequential);
    }

    #[test]
    fn table2_row_counts_only_omp_loops() {
        let mut evs = doall_events();
        evs.extend(reduction_events());
        evs.extend(recurrence_events());
        let r = profile(&evs);
        let metas = [meta(0, true), meta(1, true), meta(2, false)];
        let row = table2_row(&r, &metas);
        assert_eq!(row.omp, 2);
        assert_eq!(row.identified, 1);
    }

    #[test]
    fn unexecuted_loop_reported() {
        let r = profile(&doall_events());
        let v = classify_loops(&r, &[meta(9, true)]);
        assert_eq!(v[0].class, LoopClass::NotExecuted);
    }
}

#[cfg(test)]
mod privatization_tests {
    use super::*;
    use dp_core::SequentialProfiler;
    use dp_types::{loc::loc, AccessKind, MemAccess, TraceEvent, Tracer};

    /// A loop where a temporary is written then read within each
    /// iteration: carried WAW/WAR on the temp, no carried RAW.
    #[test]
    fn temp_variable_is_privatizable() {
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::LoopBegin { loop_id: 4, loc: loc(1, 1), thread: 0, ts: 1 });
        for it in 0..3u64 {
            let t = 10 + it * 10;
            p.event(TraceEvent::LoopIter { loop_id: 4, iter: it, thread: 0, ts: t });
            // write temp (addr 0x8, var 9) then read it, same iteration
            p.event(TraceEvent::Access(MemAccess {
                addr: 0x8,
                ts: t + 1,
                loc: loc(1, 2),
                var: 9,
                thread: 0,
                kind: AccessKind::Write,
            }));
            p.event(TraceEvent::Access(MemAccess {
                addr: 0x8,
                ts: t + 2,
                loc: loc(1, 3),
                var: 9,
                thread: 0,
                kind: AccessKind::Read,
            }));
        }
        p.event(TraceEvent::LoopEnd { loop_id: 4, loc: loc(1, 4), iters: 3, thread: 0, ts: 99 });
        let r = p.finish();
        let metas = [LoopMeta { id: 4, name: "l".into(), omp: true }];
        let cands = privatization_candidates(&r, &metas);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].var, 9);
        assert!(cands[0].waw > 0, "{cands:?}"); // write of next iter vs write of prev
                                                // And the loop itself is NOT DOALL (carried WAW) but also not
                                                // blocked by RAW — classify still says DOALL because only RAW blocks:
        let v = classify_loops(&r, &metas);
        assert_eq!(v[0].class, LoopClass::Doall);
    }

    /// A reduction's accumulator must NOT be a privatization candidate
    /// (it carries a RAW).
    #[test]
    fn accumulator_is_not_privatizable() {
        let mut p = SequentialProfiler::perfect();
        p.event(TraceEvent::LoopBegin { loop_id: 5, loc: loc(1, 1), thread: 0, ts: 1 });
        for it in 0..3u64 {
            let t = 10 + it * 10;
            p.event(TraceEvent::LoopIter { loop_id: 5, iter: it, thread: 0, ts: t });
            p.event(TraceEvent::Access(MemAccess {
                addr: 0x10,
                ts: t + 1,
                loc: loc(1, 2),
                var: 3,
                thread: 0,
                kind: AccessKind::Read,
            }));
            p.event(TraceEvent::Access(MemAccess {
                addr: 0x10,
                ts: t + 2,
                loc: loc(1, 2),
                var: 3,
                thread: 0,
                kind: AccessKind::Write,
            }));
        }
        p.event(TraceEvent::LoopEnd { loop_id: 5, loc: loc(1, 3), iters: 3, thread: 0, ts: 99 });
        let r = p.finish();
        let metas = [LoopMeta { id: 5, name: "red".into(), omp: true }];
        assert!(privatization_candidates(&r, &metas).is_empty());
    }
}
