//! Input-sensitivity mitigation by unioning runs.
//!
//! "Although dependence profiling is inherently input sensitive, the
//! results are still useful in many situations ... input sensitivity can
//! be addressed by running the target program with changing inputs and
//! computing the union of all collected dependences." (Section I)
//!
//! [`union_runs`] merges the dependence stores of several profiling runs
//! into one result; [`stability`] reports how much each additional run
//! contributed — when new runs stop adding dependences, the union has
//! (empirically) converged for the input distribution at hand.

use dp_core::{DepStore, ProfileResult};

/// Unions the dependences (and loop records, stats) of several runs of
/// the same program under different inputs.
pub fn union_runs<I: IntoIterator<Item = ProfileResult>>(runs: I) -> ProfileResult {
    let mut out = ProfileResult::default();
    let mut store = DepStore::new();
    for r in runs {
        store.merge(r.deps);
        out.stats.events += r.stats.events;
        out.stats.accesses += r.stats.accesses;
        out.stats.reads += r.stats.reads;
        out.stats.writes += r.stats.writes;
        out.stats.reversed += r.stats.reversed;
        out.workers = out.workers.max(r.workers);
    }
    out.stats.deps_built = store.deps_built();
    out.stats.deps_merged = store.merged_len();
    out.deps = store;
    out
}

/// Per-run contribution curve: `(run index, cumulative distinct deps,
/// newly added)`. A tail of zeros suggests the union has stabilized.
pub fn stability(runs: &[ProfileResult]) -> Vec<(usize, u64, u64)> {
    let mut cum = DepStore::new();
    let mut out = Vec::with_capacity(runs.len());
    for (i, r) in runs.iter().enumerate() {
        let before = cum.merged_len();
        cum.merge(r.deps.clone());
        let after = cum.merged_len();
        out.push((i, after, after - before));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::SequentialProfiler;
    use dp_types::{loc::loc, MemAccess, TraceEvent, Tracer};

    fn run(addrs: &[u64]) -> ProfileResult {
        let mut p = SequentialProfiler::perfect();
        let mut ts = 0;
        for &a in addrs {
            ts += 1;
            p.event(TraceEvent::Access(MemAccess::write(a, ts, loc(1, (a % 97) as u32 + 1), 1, 0)));
            ts += 1;
            p.event(TraceEvent::Access(MemAccess::read(
                a,
                ts,
                loc(1, (a % 89) as u32 + 200),
                1,
                0,
            )));
        }
        p.finish()
    }

    #[test]
    fn union_superset_of_each_run() {
        let r1 = run(&[8, 16, 24]);
        let r2 = run(&[24, 32]);
        let n1 = r1.stats.deps_merged;
        let n2 = r2.stats.deps_merged;
        let u = union_runs([r1, r2]);
        assert!(u.stats.deps_merged >= n1.max(n2));
        assert!(u.stats.deps_merged <= n1 + n2);
    }

    #[test]
    fn stability_converges_on_identical_inputs() {
        let runs: Vec<_> = (0..4).map(|_| run(&[8, 16])).collect();
        let s = stability(&runs);
        assert_eq!(s.len(), 4);
        assert!(s[0].2 > 0, "first run contributes everything");
        assert_eq!(s[1].2, 0, "identical input adds nothing");
        assert_eq!(s[3].1, s[0].1);
    }

    #[test]
    fn stability_grows_with_new_inputs() {
        let runs = vec![run(&[8]), run(&[16]), run(&[8, 16])];
        let s = stability(&runs);
        assert!(s[1].2 > 0);
        assert_eq!(s[2].2, 0, "third run covered by first two");
    }
}
