//! Potential data races from timestamp reversals (Section V-B).
//!
//! "The situation where the atomicity of access occurrence and reporting
//! is violated can only happen if there are no synchronization mechanisms
//! in place to keep the two accesses to \[the\] memory location mutually
//! exclusive. ... its absence definitely exposes a potential data race."

use dp_core::ProfileResult;
use dp_types::{DepFlags, DepType, SourceLoc, ThreadId, VarId};

/// One potential race: a dependence observed with reversed timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceHint {
    /// Variable involved.
    pub var: VarId,
    /// Dependence type under which the reversal was seen.
    pub dtype: DepType,
    /// The two statements involved (sink, source) with their threads.
    pub sink: (SourceLoc, ThreadId),
    /// Source statement and thread.
    pub source: (SourceLoc, ThreadId),
    /// How many dynamic occurrences the merged record accumulated (not
    /// all of them necessarily reversed).
    pub occurrences: u64,
}

/// Extracts all REVERSED-flagged dependences.
pub fn find_races(result: &ProfileResult) -> Vec<RaceHint> {
    let mut out: Vec<RaceHint> = result
        .deps
        .dependences()
        .filter(|(d, _)| d.edge.flags.contains(DepFlags::REVERSED))
        .map(|(d, v)| RaceHint {
            var: d.edge.var,
            dtype: d.edge.dtype,
            sink: (d.sink.loc, d.sink.thread),
            source: (d.edge.source_loc, d.edge.source_thread),
            occurrences: v.count,
        })
        .collect();
    out.sort_by_key(|r| (r.sink, r.source));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::{MtProfiler, ProfilerConfig};
    use dp_types::{loc::loc, MemAccess, TraceEvent, Tracer, TracerFactory};

    #[test]
    fn reversed_dep_surfaces_as_race_hint() {
        let prof = MtProfiler::new(ProfilerConfig::default().with_workers(1));
        let mut t1 = prof.tracer(1);
        t1.event(TraceEvent::Access(MemAccess::write(0x40, 12, loc(1, 5), 3, 1)));
        t1.sync_point();
        let mut t2 = prof.tracer(2);
        t2.event(TraceEvent::Access(MemAccess::read(0x40, 10, loc(1, 6), 3, 2)));
        t2.sync_point();
        prof.join(1, t1);
        prof.join(2, t2);
        let r = prof.finish();
        let races = find_races(&r);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].dtype, DepType::Raw);
        assert_eq!(races[0].sink.1, 2);
        assert_eq!(races[0].source.1, 1);
    }

    #[test]
    fn ordered_deps_produce_no_hints() {
        let prof = MtProfiler::new(ProfilerConfig::default().with_workers(1));
        let mut t1 = prof.tracer(1);
        t1.event(TraceEvent::Access(MemAccess::write(0x40, 1, loc(1, 5), 3, 1)));
        t1.sync_point();
        let mut t2 = prof.tracer(2);
        t2.event(TraceEvent::Access(MemAccess::read(0x40, 2, loc(1, 6), 3, 2)));
        t2.sync_point();
        prof.join(1, t1);
        prof.join(2, t2);
        let r = prof.finish();
        assert!(find_races(&r).is_empty());
    }
}
