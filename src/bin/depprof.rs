//! `depprof` — command-line front-end to the dependence profiler.
//!
//! ```text
//! depprof list
//! depprof profile <workload> [--engine serial|parallel|lock-based|perfect]
//!                            [--transport spsc|mpmc|lock]
//!                            [--overflow block|drop]
//!                            [--workers N] [--slots N] [--scale F]
//!                            [--inject-panic W@N] [--inject-stall W@N]
//!                            [--report|--analyze|--dot|--csv]
//!                            [--stats json|text]
//! ```
//!
//! `--stats` replaces the normal report on stdout with the pipeline
//! metrics snapshot (event-conservation counters, queue statistics,
//! signature gauges, phase timings) — `json` emits a single stable-keyed
//! JSON object suitable for `jq`, `text` a human-readable table. The
//! engine banner and any degradation warnings stay on stderr.
//!
//! `<workload>` is any bundled mini (NAS: bt sp lu is ep cg mg ft;
//! Starbench: c-ray kmeans md5 ray-rot rgbyuv rotate rot-cc
//! streamcluster tinyjpeg bodytrack h264dec; SPLASH: water-spatial;
//! synthetic: racy-counter locked-counter). Parallel (pthread-style)
//! targets are profiled with the multi-threaded engine automatically.
//!
//! Exit codes are distinct so scripts and CI can react to each failure
//! class: `2` usage errors (bad flag, unknown engine), `3` missing or
//! unopenable inputs (unknown workload, absent trace file), `4` a trace
//! file that exists but is corrupt or truncated, `5` a profile that
//! completed *degraded* (worker failures or dropped events — the report
//! is still printed, with a `WARNING:` banner on stderr).

use depprof::analysis::{degradation, Framework, LoopMeta};
use depprof::core::{report, OverflowPolicy, ProfilerConfig, TransportKind, WorkerFault};
use depprof::trace::workloads::{nas_suite, splash, starbench_suite, synth, Scale, Workload};

/// Bad command line (unknown flag/engine/value).
const EXIT_USAGE: i32 = 2;
/// Input missing: unknown workload, or a file that cannot be opened.
const EXIT_INPUT: i32 = 3;
/// The trace file exists but is not a readable trace (corrupt/truncated).
const EXIT_CORRUPT: i32 = 4;
/// The run finished but the profile is degraded (losses were recorded).
const EXIT_DEGRADED: i32 = 5;

struct Args {
    workload: String,
    engine: String,
    workers: usize,
    slots: usize,
    scale: f64,
    mode: String,
    transport: Option<TransportKind>,
    overflow: Option<OverflowPolicy>,
    inject_panic: Option<WorkerFault>,
    inject_stall: Option<WorkerFault>,
    stats: Option<String>,
}

fn parse() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" {
        return Err("usage".into());
    }
    if argv[0] == "record" || argv[0] == "replay" {
        let mut a = Args {
            workload: argv.get(1).cloned().ok_or("record/replay need an argument")?,
            engine: argv[0].clone(),
            workers: 8,
            slots: 1 << 20,
            scale: 0.25,
            mode: "trace".into(),
            transport: None,
            overflow: None,
            inject_panic: None,
            inject_stall: None,
            stats: None,
        };
        let mut i = 2;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    i += 1;
                    a.scale = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--scale: float")?;
                }
                "--slots" => {
                    i += 1;
                    a.slots = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--slots: int")?;
                }
                "--out" | "--in" => {
                    i += 1;
                    a.mode = argv.get(i).cloned().ok_or("--out/--in need a path")?;
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
            i += 1;
        }
        return Ok(a);
    }
    if argv[0] == "list" {
        return Ok(Args {
            workload: "list".into(),
            engine: String::new(),
            workers: 0,
            slots: 0,
            scale: 0.0,
            mode: String::new(),
            transport: None,
            overflow: None,
            inject_panic: None,
            inject_stall: None,
            stats: None,
        });
    }
    if argv[0] != "profile" {
        return Err(format!("unknown command '{}'", argv[0]));
    }
    let mut a = Args {
        workload: argv.get(1).cloned().ok_or("profile needs a workload name")?,
        engine: "serial".into(),
        workers: 8,
        slots: 1 << 20,
        scale: 0.25,
        mode: "report".into(),
        transport: None,
        overflow: None,
        inject_panic: None,
        inject_stall: None,
        stats: None,
    };
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--engine" => {
                i += 1;
                a.engine = argv.get(i).cloned().ok_or("--engine needs a value")?;
            }
            "--transport" => {
                i += 1;
                let v = argv.get(i).ok_or("--transport needs a value")?;
                a.transport = Some(
                    TransportKind::parse(v)
                        .ok_or_else(|| format!("--transport: unknown kind '{v}'"))?,
                );
            }
            "--overflow" => {
                i += 1;
                let v = argv.get(i).ok_or("--overflow needs a value")?;
                a.overflow = Some(
                    OverflowPolicy::parse(v)
                        .ok_or_else(|| format!("--overflow: unknown policy '{v}' (block|drop)"))?,
                );
            }
            "--inject-panic" => {
                i += 1;
                let v = argv.get(i).ok_or("--inject-panic needs WORKER@CHUNKS")?;
                a.inject_panic = Some(
                    WorkerFault::parse(v)
                        .ok_or_else(|| format!("--inject-panic: bad spec '{v}' (e.g. 2@5)"))?,
                );
            }
            "--inject-stall" => {
                i += 1;
                let v = argv.get(i).ok_or("--inject-stall needs WORKER@CHUNKS")?;
                a.inject_stall = Some(
                    WorkerFault::parse(v)
                        .ok_or_else(|| format!("--inject-stall: bad spec '{v}' (e.g. 2@5)"))?,
                );
            }
            "--workers" => {
                i += 1;
                a.workers = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--workers: int")?;
            }
            "--slots" => {
                i += 1;
                a.slots = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--slots: int")?;
            }
            "--scale" => {
                i += 1;
                a.scale = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--scale: float")?;
            }
            "--stats" => {
                i += 1;
                let v = argv.get(i).ok_or("--stats needs a format (json|text)")?;
                if v != "json" && v != "text" {
                    return Err(format!("--stats: unknown format '{v}' (json|text)"));
                }
                a.stats = Some(v.clone());
            }
            "--report" => a.mode = "report".into(),
            "--analyze" => a.mode = "analyze".into(),
            "--dot" => a.mode = "dot".into(),
            "--csv" => a.mode = "csv".into(),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(a)
}

fn find_workload(name: &str, scale: Scale) -> Option<Workload> {
    let lower = name.to_ascii_lowercase();
    nas_suite(scale)
        .into_iter()
        .chain(starbench_suite(scale))
        .find(|w| w.meta.name.eq_ignore_ascii_case(&lower))
        .or_else(|| match lower.as_str() {
            "water-spatial" => Some(splash::water_spatial(scale, 8)),
            "racy-counter" => Some(synth::racy_counter(scale, 4)),
            "locked-counter" => Some(synth::locked_counter(scale, 4)),
            _ => None,
        })
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            if e != "usage" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage:\n  depprof list\n  depprof profile <workload> \
                 [--engine serial|parallel|lock-based|perfect] \
                 [--transport spsc|mpmc|lock] [--overflow block|drop] \
                 [--workers N] [--slots N] [--scale F] \
                 [--inject-panic W@N] [--inject-stall W@N] \
                 [--report|--analyze|--dot|--csv] [--stats json|text]\n  \
                 depprof record <workload> [--out trace.dptr] [--scale F]\n  \
                 depprof replay <trace.dptr> [--slots N]"
            );
            std::process::exit(EXIT_USAGE);
        }
    };

    if args.engine == "record" {
        // `depprof record <workload> --out trace.dptr`
        let path = if args.mode == "trace" { "trace.dptr".to_string() } else { args.mode.clone() };
        let Some(w) = find_workload(&args.workload, Scale(args.scale)) else {
            eprintln!("unknown workload '{}'", args.workload);
            std::process::exit(EXIT_INPUT);
        };
        if w.meta.parallel {
            eprintln!(
                "recording multi-threaded targets is not supported (their event order \
                 is schedule-dependent); profile them live with `depprof profile`"
            );
            std::process::exit(EXIT_USAGE);
        }
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create trace file '{path}': {e}");
                std::process::exit(EXIT_INPUT);
            }
        };
        let mut wtr = match depprof::trace::TraceWriter::with_names(file, &w.program.interner) {
            Ok(wtr) => wtr,
            Err(e) => {
                eprintln!("cannot write trace header to '{path}': {e}");
                std::process::exit(EXIT_INPUT);
            }
        };
        let vm = depprof::trace::Interp::new(&w.program);
        vm.run_seq(&mut wtr);
        let events = wtr.events();
        if let Err(e) = wtr.finish() {
            eprintln!("cannot flush trace to '{path}': {e}");
            std::process::exit(EXIT_INPUT);
        }
        eprintln!("recorded {events} events of {} to {path}", w.meta.name);
        return;
    }
    if args.engine == "replay" {
        // `depprof replay trace.dptr [--slots N]`
        let path = &args.workload;
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot open trace file '{path}': {e}");
                std::process::exit(EXIT_INPUT);
            }
        };
        let mut reader = match depprof::trace::TraceReader::new(file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("'{path}': {e}");
                std::process::exit(EXIT_CORRUPT);
            }
        };
        let interner = reader.interner().clone();
        let mut prof = depprof::core::SequentialProfiler::with_signature(args.slots);
        for ev in &mut reader {
            match ev {
                Ok(ev) => prof.on_event(&ev),
                Err(e) => {
                    eprintln!("'{path}': {e}");
                    std::process::exit(EXIT_CORRUPT);
                }
            }
        }
        let result = prof.finish();
        eprintln!("{}", report::summary(&result));
        println!("{}", report::render(&result, &interner, false));
        return;
    }
    if args.workload == "list" {
        println!("NAS:       BT SP LU IS EP CG MG FT");
        println!(
            "Starbench: c-ray kmeans md5 ray-rot rgbyuv rotate rot-cc streamcluster \
             tinyjpeg bodytrack h264dec"
        );
        println!("SPLASH:    water-spatial (8 target threads)");
        println!("synthetic: racy-counter locked-counter (4 target threads)");
        return;
    }

    let Some(w) = find_workload(&args.workload, Scale(args.scale)) else {
        eprintln!("unknown workload '{}' (try `depprof list`)", args.workload);
        std::process::exit(EXIT_INPUT);
    };

    let mut cfg = ProfilerConfig::default().with_workers(args.workers).with_slots(args.slots);
    if let Some(p) = args.overflow {
        cfg = cfg.with_overflow(p);
    }
    let mut plan = depprof::core::FaultPlan::none();
    if let Some(f) = args.inject_panic {
        plan = plan.with_panic(f.worker, f.after_chunks);
    }
    if let Some(f) = args.inject_stall {
        plan = plan.with_stall(f.worker, f.after_chunks);
    }
    cfg = cfg.with_fault_plan(plan);
    let result = if w.meta.parallel {
        eprintln!(
            "profiling {} ({} target threads) with the multi-threaded engine, {} workers ...",
            w.meta.name, w.meta.nthreads, args.workers
        );
        depprof::profile_mt(&w.program, cfg)
    } else {
        match args.engine.as_str() {
            "serial" => {
                eprintln!("profiling {} with the serial signature engine ...", w.meta.name);
                depprof::profile_sequential(&w.program, args.slots)
            }
            "perfect" => {
                eprintln!("profiling {} with the perfect-signature baseline ...", w.meta.name);
                depprof::profile_sequential_perfect(&w.program)
            }
            "parallel" => {
                // The target is sequential (one producer), so the SPSC
                // fast path is the default unless --transport overrides.
                let cfg = cfg.with_transport(args.transport.unwrap_or(TransportKind::Spsc));
                eprintln!(
                    "profiling {} with the parallel pipeline ({} transport), {} workers ...",
                    w.meta.name,
                    cfg.transport.name(),
                    args.workers
                );
                depprof::profile_parallel(&w.program, cfg)
            }
            "lock-based" => {
                eprintln!(
                    "profiling {} with the lock-based pipeline, {} workers ...",
                    w.meta.name, args.workers
                );
                depprof::profile_parallel(&w.program, cfg.with_transport(TransportKind::Lock))
            }
            other => {
                eprintln!("unknown engine '{other}'");
                std::process::exit(EXIT_USAGE);
            }
        }
    };

    eprintln!("{}\n", report::summary(&result));
    if let Some(fmt) = &args.stats {
        // Stats mode replaces the report: stdout carries *only* the
        // snapshot so `depprof ... --stats json | jq` works unpiped.
        match fmt.as_str() {
            "json" => println!("{}", result.metrics.to_json()),
            _ => println!("{}", result.metrics.to_text()),
        }
        let d = degradation(&result);
        if d.degraded() {
            for f in &result.stats.worker_failures {
                eprintln!("WARNING: {f}");
            }
            eprintln!("WARNING: {} — expected FNR ~{:.2}%", d.summary(), d.expected_fnr());
            std::process::exit(EXIT_DEGRADED);
        }
        return;
    }
    match args.mode.as_str() {
        "report" => {
            println!("{}", report::render(&result, &w.program.interner, w.meta.parallel));
        }
        "dot" => {
            let g = depprof::analysis::DepGraph::build(&result);
            println!("{}", g.to_dot(w.meta.parallel));
        }
        "csv" => {
            println!("{}", report::to_csv(&result, &w.program.interner));
        }
        "analyze" => {
            let metas: Vec<LoopMeta> = w
                .program
                .loops
                .iter()
                .map(|l| LoopMeta { id: l.id, name: l.name.clone(), omp: l.omp })
                .collect();
            let mut fw = Framework::with_builtin();
            for (name, fragment) in fw.run(
                &result,
                &w.program.interner,
                &metas,
                &w.program.func_names,
                if w.meta.parallel { w.meta.nthreads as usize + 1 } else { 0 },
            ) {
                println!("== {name} ==\n{fragment}\n");
            }
        }
        _ => unreachable!(),
    }

    // The dependences that WERE reported are exact; the banner and exit
    // code make the coverage loss impossible to miss in scripts and CI.
    let d = degradation(&result);
    if d.degraded() {
        for f in &result.stats.worker_failures {
            eprintln!("WARNING: {f}");
        }
        eprintln!("WARNING: {} — expected FNR ~{:.2}%", d.summary(), d.expected_fnr());
        std::process::exit(EXIT_DEGRADED);
    }
}
