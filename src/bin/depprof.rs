//! `depprof` — command-line front-end to the dependence profiler.
//!
//! ```text
//! depprof list
//! depprof profile <workload> [--engine serial|parallel|lock-based|perfect]
//!                            [--transport spsc|mpmc|lock]
//!                            [--overflow block|drop]
//!                            [--workers N] [--slots N] [--scale F]
//!                            [--inject-panic W@N] [--inject-stall W@N]
//!                            [--report|--analyze|--dot|--csv]
//!                            [--stats json|text] [--out PATH]
//! depprof record <workload>  [--out trace.dptr] [--scale F]
//! depprof replay <trace.dptr> [--engine serial|parallel]
//!                            [--transport spsc|mpmc|lock]
//!                            [--workers N] [--slots N]
//!                            [--checkpoint-every N] [--checkpoint-dir DIR]
//!                            [--watchdog-deadline MS]
//!                            [--inject-kill-after N] [--no-redistribution]
//!                            [--stats json|text] [--report-out PATH]
//! depprof replay --resume <dir> [--watchdog-deadline MS] ...
//! depprof serve              [--listen HOST:PORT] [--unix PATH]
//!                            [--max-sessions N]
//!                            [--checkpoint-dir DIR] [--checkpoint-every N]
//!                            [--busy-retry-ms MS] [--hibernate-after MS]
//!                            [--chaos SPEC]
//! depprof push <trace.dptr>  (--connect HOST:PORT | --unix PATH)
//!                            [--session NAME] [--engine serial|parallel]
//!                            [--transport spsc|mpmc|lock] [--workers N]
//!                            [--slots N] [--checkpoint-every N]
//!                            [--chunk-events N] [--throttle-ms MS]
//!                            [--retries N] [--retry-delay-ms MS]
//!                            [--sync-every N] [--chaos SPEC]
//!                            [--watch[=MS]] [--watch-dump PATH]
//!                            [--stats json] [--report-out PATH]
//! ```
//!
//! `--stats` replaces the normal report on stdout with the pipeline
//! metrics snapshot (event-conservation counters, queue statistics,
//! signature gauges, phase timings) — `json` emits a single stable-keyed
//! JSON object suitable for `jq`, `text` a human-readable table. The
//! engine banner and any degradation warnings stay on stderr.
//!
//! `<workload>` is any bundled mini (NAS: bt sp lu is ep cg mg ft;
//! Starbench: c-ray kmeans md5 ray-rot rgbyuv rotate rot-cc
//! streamcluster tinyjpeg bodytrack h264dec; SPLASH: water-spatial;
//! synthetic: racy-counter locked-counter). Parallel (pthread-style)
//! targets are profiled with the multi-threaded engine automatically.
//!
//! `replay --checkpoint-every N` makes the run *durable*: every N trace
//! records the pipeline is quiesced and its full state (signatures,
//! dependence maps, router statistics, queue ledger) is written to a
//! two-generation checkpoint directory with an atomic temp-file + rename
//! protocol — a kill at any instant leaves a valid generation on disk.
//! `replay --resume <dir>` picks up the latest valid generation, seeks
//! the trace to the recorded position and continues; the final profile is
//! identical to an uninterrupted run. `--watchdog-deadline MS` arms a
//! monitor that forces an emergency checkpoint and exits with code `6`
//! when the pipeline stops making progress.
//!
//! `serve` runs the profiler as a network service speaking the DPSV v1
//! frame protocol; `push` streams a recorded trace to it and prints the
//! report the server sends back. Each push names a *session*; a server
//! started with `--checkpoint-dir` checkpoints its sessions, and a push
//! repeated after a server crash (or SIGTERM) resumes where the
//! checkpoint left off — the server tells the client how many events to
//! skip in its `HelloAck`. `push` survives flaky networks on its own:
//! on a mid-stream disconnect it reconnects with bounded jittered
//! backoff (`--retries`, `--retry-delay-ms`), re-`Hello`s the same
//! session, and resumes from the server's watermark — positional frames
//! make the overlap land exactly once. A server past `--max-sessions`
//! answers with a typed `Busy{retry_after_ms}` hint (`--busy-retry-ms`)
//! the client honors; `--hibernate-after MS` evicts idle durable
//! sessions to the checkpoint store so the cap bounds live engines, not
//! named sessions. `--chaos SPEC` (both sides) injects deterministic
//! network faults — `seed=N,reset-bytes=N,reset-frames=N,short-io,`
//! `stall=EVERYxMS,dup=N` — for drills and tests.
//!
//! Exit codes are distinct so scripts and CI can react to each failure
//! class: `2` usage errors (bad flag, unknown engine), `3` missing or
//! unopenable inputs (unknown workload, absent trace file), `4` a trace
//! file or checkpoint that exists but is corrupt or truncated, `5` a
//! profile that completed *degraded* (worker failures or dropped events —
//! the report is still printed, with a `WARNING:` banner on stderr), `6`
//! the run watchdog gave up on a stalled pipeline, `7` terminated by
//! SIGINT/SIGTERM after a final emergency checkpoint (`replay`, `serve`),
//! `8` the server refused a `push` with typed backpressure and the retry
//! budget ran out (nothing was profiled; retry after the hinted delay).

use depprof::analysis::{degradation, Framework, LoopMeta};
use depprof::core::{
    report, AnyParallelProfiler, CheckpointMetrics, CheckpointStore, OverflowPolicy, ProfileResult,
    ProfileSession, ProfilerConfig, SequentialProfiler, SessionSpec, TransportKind, Watchdog,
    WorkerFault,
};
use depprof::server::{
    install_signal_handlers, push_with_retry, shutdown_flag, ChaosStream, ClientError,
    NetFaultPlan, PushOptions, RetryPolicy, Server, ServerConfig,
};
use depprof::trace::workloads::{nas_suite, splash, starbench_suite, synth, Scale, Workload};
use depprof::trace::TraceReader;
use depprof::types::wire::{atomic_write, ByteReader, ByteWriter, WireError};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Bad command line (unknown flag/engine/value).
const EXIT_USAGE: i32 = 2;
/// Input missing: unknown workload, or a file that cannot be opened.
const EXIT_INPUT: i32 = 3;
/// The trace file exists but is not a readable trace (corrupt/truncated).
const EXIT_CORRUPT: i32 = 4;
/// The run finished but the profile is degraded (losses were recorded).
const EXIT_DEGRADED: i32 = 5;
/// The run watchdog detected a stalled pipeline; an emergency checkpoint
/// was written (when checkpointing is active) and the run gave up.
const EXIT_WATCHDOG: i32 = 6;
/// The run was terminated by SIGINT/SIGTERM after writing a final
/// emergency checkpoint (`serve` and `replay`).
const EXIT_SIGNAL: i32 = depprof::server::SIGTERM_EXIT;
/// `push`: the server refused the session with typed backpressure
/// (`Busy`/`AT_CAPACITY`) and every retry budgeted for it was spent.
/// The session was *not* profiled; rerun the push once load drops.
const EXIT_BUSY: i32 = 8;

#[derive(Default)]
struct Args {
    workload: String,
    engine: String,
    workers: usize,
    slots: usize,
    scale: f64,
    mode: String,
    transport: Option<TransportKind>,
    overflow: Option<OverflowPolicy>,
    inject_panic: Option<WorkerFault>,
    inject_stall: Option<WorkerFault>,
    stats: Option<String>,
    /// Replay: which engine consumes the trace (serial|parallel).
    replay_engine: String,
    /// Replay: checkpoint every N trace records (0 = off).
    checkpoint_every: u64,
    /// Replay: checkpoint directory (default `<trace>.ckpt`).
    checkpoint_dir: Option<String>,
    /// Replay: resume from this checkpoint directory.
    resume: Option<String>,
    /// Watchdog no-progress deadline in milliseconds (0 = off).
    watchdog_deadline_ms: u64,
    /// Replay: SIGKILL the process after feeding N records this run.
    inject_kill_after: Option<u64>,
    /// Replay (parallel engine): disable hot-address redistribution.
    no_redistribution: bool,
    /// Replay (parallel engine): override the supervisor's stall deadline
    /// (lets tests pit the run watchdog against a wedged pipeline without
    /// the per-worker supervision recovering it first).
    stall_deadline_ms: Option<u64>,
    /// Write the main artifact (report or stats) to this path atomically
    /// instead of stdout.
    out: Option<String>,
    /// Serve: TCP listen address.
    listen: Option<String>,
    /// Serve/push: Unix socket path.
    unix_sock: Option<String>,
    /// Push: TCP address to connect to.
    connect: Option<String>,
    /// Push: session name (resume identity on the server).
    session: Option<String>,
    /// Serve: concurrent-session cap.
    max_sessions: usize,
    /// Push: accesses per Chunk frame.
    chunk_events: usize,
    /// Push: sleep between chunk frames (ms).
    throttle_ms: u64,
    /// Push: total connection attempts before giving up.
    retries: u32,
    /// Push: base reconnect backoff delay (ms).
    retry_delay_ms: u64,
    /// Push: send a Sync watermark probe every N chunks (0 = never).
    sync_every: u64,
    /// Push: query live analysis every N ms while streaming (`--watch[=MS]`).
    watch: Option<u64>,
    /// Push: write the final QueryResult JSON to this path.
    watch_dump: Option<String>,
    /// Serve: Busy retry hint handed to refused clients (ms).
    busy_retry_ms: u64,
    /// Serve: hibernate idle durable sessions after this long (ms, 0 = never).
    hibernate_after_ms: u64,
    /// Serve/push: network fault-injection plan (`--chaos SPEC`).
    chaos_plan: Option<NetFaultPlan>,
    /// Fuzz: programs to generate and check.
    seeds: u64,
    /// Fuzz: first seed (shards campaigns across CI jobs).
    start_seed: u64,
    /// Fuzz: small/fast generator configuration.
    quick: bool,
    /// Fuzz: directory minimized repros are written to.
    corpus: Option<String>,
    /// Fuzz: skip the web-scale Zipfian stress streams.
    no_webscale: bool,
}

fn base_args() -> Args {
    Args {
        workers: 8,
        slots: 1 << 20,
        scale: 0.25,
        replay_engine: "serial".into(),
        max_sessions: 16,
        chunk_events: 512,
        retries: 5,
        retry_delay_ms: 100,
        busy_retry_ms: 200,
        ..Args::default()
    }
}

fn parse() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" {
        return Err("usage".into());
    }
    if argv[0] == "record" || argv[0] == "replay" {
        let mut a = base_args();
        a.engine = argv[0].clone();
        a.mode = "trace".into();
        // `replay --resume DIR` has no trace argument; everything else
        // starts with one.
        let mut i = if argv.get(1).is_some_and(|s| s.starts_with("--")) {
            1
        } else {
            a.workload = argv.get(1).cloned().ok_or("record/replay need an argument")?;
            2
        };
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    i += 1;
                    a.scale = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--scale: float")?;
                }
                "--slots" => {
                    i += 1;
                    a.slots = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--slots: int")?;
                }
                "--out" | "--in" => {
                    i += 1;
                    a.mode = argv.get(i).cloned().ok_or("--out/--in need a path")?;
                }
                "--engine" if a.engine == "replay" => {
                    i += 1;
                    let v = argv.get(i).cloned().ok_or("--engine needs a value")?;
                    if v != "serial" && v != "parallel" {
                        return Err(format!(
                            "--engine: replay supports serial|parallel, not '{v}'"
                        ));
                    }
                    a.replay_engine = v;
                }
                "--transport" if a.engine == "replay" => {
                    i += 1;
                    let v = argv.get(i).ok_or("--transport needs a value")?;
                    a.transport = Some(
                        TransportKind::parse(v)
                            .ok_or_else(|| format!("--transport: unknown kind '{v}'"))?,
                    );
                }
                "--workers" if a.engine == "replay" => {
                    i += 1;
                    a.workers = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--workers: int")?;
                }
                "--checkpoint-every" if a.engine == "replay" => {
                    i += 1;
                    a.checkpoint_every = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or("--checkpoint-every: positive record count")?;
                }
                "--checkpoint-dir" if a.engine == "replay" => {
                    i += 1;
                    a.checkpoint_dir =
                        Some(argv.get(i).cloned().ok_or("--checkpoint-dir needs a path")?);
                }
                "--resume" if a.engine == "replay" => {
                    i += 1;
                    a.resume = Some(argv.get(i).cloned().ok_or("--resume needs a directory")?);
                }
                "--watchdog-deadline" if a.engine == "replay" => {
                    i += 1;
                    a.watchdog_deadline_ms = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or("--watchdog-deadline: positive milliseconds")?;
                }
                "--inject-kill-after" if a.engine == "replay" => {
                    i += 1;
                    a.inject_kill_after = Some(
                        argv.get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or("--inject-kill-after: record count")?,
                    );
                }
                "--no-redistribution" if a.engine == "replay" => a.no_redistribution = true,
                "--overflow" if a.engine == "replay" => {
                    i += 1;
                    let v = argv.get(i).ok_or("--overflow needs a value")?;
                    a.overflow =
                        Some(OverflowPolicy::parse(v).ok_or_else(|| {
                            format!("--overflow: unknown policy '{v}' (block|drop)")
                        })?);
                }
                "--inject-stall" if a.engine == "replay" => {
                    i += 1;
                    let v = argv.get(i).ok_or("--inject-stall needs WORKER@CHUNKS")?;
                    a.inject_stall = Some(
                        WorkerFault::parse(v)
                            .ok_or_else(|| format!("--inject-stall: bad spec '{v}' (e.g. 2@5)"))?,
                    );
                }
                "--stall-deadline" if a.engine == "replay" => {
                    i += 1;
                    a.stall_deadline_ms = Some(
                        argv.get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or("--stall-deadline: milliseconds")?,
                    );
                }
                "--stats" if a.engine == "replay" => {
                    i += 1;
                    let v = argv.get(i).ok_or("--stats needs a format (json|text)")?;
                    if v != "json" && v != "text" {
                        return Err(format!("--stats: unknown format '{v}' (json|text)"));
                    }
                    a.stats = Some(v.clone());
                }
                "--report-out" if a.engine == "replay" => {
                    i += 1;
                    a.out = Some(argv.get(i).cloned().ok_or("--report-out needs a path")?);
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
            i += 1;
        }
        if a.engine == "replay" && a.workload.is_empty() && a.resume.is_none() {
            return Err("replay needs a trace file or --resume <dir>".into());
        }
        if a.engine == "record" && a.workload.is_empty() {
            return Err("record needs a workload name".into());
        }
        return Ok(a);
    }
    if argv[0] == "serve" {
        let mut a = base_args();
        a.engine = "serve".into();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--listen" => {
                    i += 1;
                    a.listen = Some(argv.get(i).cloned().ok_or("--listen needs HOST:PORT")?);
                }
                "--unix" => {
                    i += 1;
                    a.unix_sock = Some(argv.get(i).cloned().ok_or("--unix needs a path")?);
                }
                "--max-sessions" => {
                    i += 1;
                    a.max_sessions = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .ok_or("--max-sessions: positive count")?;
                }
                "--checkpoint-dir" => {
                    i += 1;
                    a.checkpoint_dir =
                        Some(argv.get(i).cloned().ok_or("--checkpoint-dir needs a path")?);
                }
                "--checkpoint-every" => {
                    i += 1;
                    a.checkpoint_every = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or("--checkpoint-every: positive event count")?;
                }
                "--busy-retry-ms" => {
                    i += 1;
                    a.busy_retry_ms = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--busy-retry-ms: milliseconds")?;
                }
                "--hibernate-after" => {
                    i += 1;
                    a.hibernate_after_ms = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or("--hibernate-after: positive milliseconds")?;
                }
                "--chaos" => {
                    i += 1;
                    let spec = argv.get(i).ok_or("--chaos needs a fault spec")?;
                    a.chaos_plan = Some(NetFaultPlan::parse(spec)?);
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
            i += 1;
        }
        return Ok(a);
    }
    if argv[0] == "push" {
        let mut a = base_args();
        a.engine = "push".into();
        a.workload = argv.get(1).cloned().ok_or("push needs a trace file")?;
        if a.workload.starts_with("--") {
            return Err("push needs a trace file before its flags".into());
        }
        let mut i = 2;
        while i < argv.len() {
            match argv[i].as_str() {
                "--connect" => {
                    i += 1;
                    a.connect = Some(argv.get(i).cloned().ok_or("--connect needs HOST:PORT")?);
                }
                "--unix" => {
                    i += 1;
                    a.unix_sock = Some(argv.get(i).cloned().ok_or("--unix needs a path")?);
                }
                "--session" => {
                    i += 1;
                    a.session = Some(argv.get(i).cloned().ok_or("--session needs a name")?);
                }
                "--engine" => {
                    i += 1;
                    let v = argv.get(i).cloned().ok_or("--engine needs a value")?;
                    if v != "serial" && v != "parallel" {
                        return Err(format!("--engine: push supports serial|parallel, not '{v}'"));
                    }
                    a.replay_engine = v;
                }
                "--transport" => {
                    i += 1;
                    let v = argv.get(i).ok_or("--transport needs a value")?;
                    a.transport = Some(
                        TransportKind::parse(v)
                            .ok_or_else(|| format!("--transport: unknown kind '{v}'"))?,
                    );
                }
                "--overflow" => {
                    i += 1;
                    let v = argv.get(i).ok_or("--overflow needs a value")?;
                    a.overflow =
                        Some(OverflowPolicy::parse(v).ok_or_else(|| {
                            format!("--overflow: unknown policy '{v}' (block|drop)")
                        })?);
                }
                "--workers" => {
                    i += 1;
                    a.workers = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--workers: int")?;
                }
                "--slots" => {
                    i += 1;
                    a.slots = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--slots: int")?;
                }
                "--checkpoint-every" => {
                    i += 1;
                    a.checkpoint_every = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or("--checkpoint-every: positive event count")?;
                }
                "--chunk-events" => {
                    i += 1;
                    a.chunk_events = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .ok_or("--chunk-events: positive count")?;
                }
                "--throttle-ms" => {
                    i += 1;
                    a.throttle_ms =
                        argv.get(i).and_then(|s| s.parse().ok()).ok_or("--throttle-ms: int")?;
                }
                "--retries" => {
                    i += 1;
                    a.retries = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u32| n > 0)
                        .ok_or("--retries: positive attempt count")?;
                }
                "--retry-delay-ms" => {
                    i += 1;
                    a.retry_delay_ms =
                        argv.get(i).and_then(|s| s.parse().ok()).ok_or("--retry-delay-ms: int")?;
                }
                "--sync-every" => {
                    i += 1;
                    a.sync_every =
                        argv.get(i).and_then(|s| s.parse().ok()).ok_or("--sync-every: int")?;
                }
                "--chaos" => {
                    i += 1;
                    let spec = argv.get(i).ok_or("--chaos needs a fault spec")?;
                    a.chaos_plan = Some(NetFaultPlan::parse(spec)?);
                }
                "--watch" => a.watch = Some(1000),
                w if w.starts_with("--watch=") => {
                    a.watch = Some(
                        w["--watch=".len()..]
                            .parse()
                            .map_err(|_| "--watch=MS: interval in milliseconds")?,
                    );
                }
                "--watch-dump" => {
                    i += 1;
                    a.watch_dump = Some(argv.get(i).cloned().ok_or("--watch-dump needs a path")?);
                }
                "--no-redistribution" => a.no_redistribution = true,
                "--stats" => {
                    i += 1;
                    let v = argv.get(i).ok_or("--stats needs a format (json)")?;
                    if v != "json" {
                        return Err(format!("--stats: push supports json, not '{v}'"));
                    }
                    a.stats = Some(v.clone());
                }
                "--report-out" => {
                    i += 1;
                    a.out = Some(argv.get(i).cloned().ok_or("--report-out needs a path")?);
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
            i += 1;
        }
        if a.connect.is_none() && a.unix_sock.is_none() {
            return Err("push needs --connect HOST:PORT or --unix PATH".into());
        }
        return Ok(a);
    }
    if argv[0] == "fuzz" {
        let mut a = base_args();
        a.engine = "fuzz".into();
        a.seeds = 50;
        a.workers = 3;
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--seeds" => {
                    i += 1;
                    a.seeds = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or("--seeds: positive count")?;
                }
                "--start-seed" => {
                    i += 1;
                    a.start_seed =
                        argv.get(i).and_then(|s| s.parse().ok()).ok_or("--start-seed: int")?;
                }
                "--quick" => a.quick = true,
                "--corpus" => {
                    i += 1;
                    a.corpus = Some(argv.get(i).cloned().ok_or("--corpus needs a directory")?);
                }
                "--no-webscale" => a.no_webscale = true,
                "--workers" => {
                    i += 1;
                    a.workers = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .ok_or("--workers: positive count")?;
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
            i += 1;
        }
        return Ok(a);
    }
    if argv[0] == "list" {
        return Ok(Args { workload: "list".into(), ..Args::default() });
    }
    if argv[0] != "profile" {
        return Err(format!("unknown command '{}'", argv[0]));
    }
    let mut a = base_args();
    a.workload = argv.get(1).cloned().ok_or("profile needs a workload name")?;
    a.engine = "serial".into();
    a.mode = "report".into();
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--engine" => {
                i += 1;
                a.engine = argv.get(i).cloned().ok_or("--engine needs a value")?;
            }
            "--transport" => {
                i += 1;
                let v = argv.get(i).ok_or("--transport needs a value")?;
                a.transport = Some(
                    TransportKind::parse(v)
                        .ok_or_else(|| format!("--transport: unknown kind '{v}'"))?,
                );
            }
            "--overflow" => {
                i += 1;
                let v = argv.get(i).ok_or("--overflow needs a value")?;
                a.overflow = Some(
                    OverflowPolicy::parse(v)
                        .ok_or_else(|| format!("--overflow: unknown policy '{v}' (block|drop)"))?,
                );
            }
            "--inject-panic" => {
                i += 1;
                let v = argv.get(i).ok_or("--inject-panic needs WORKER@CHUNKS")?;
                a.inject_panic = Some(
                    WorkerFault::parse(v)
                        .ok_or_else(|| format!("--inject-panic: bad spec '{v}' (e.g. 2@5)"))?,
                );
            }
            "--inject-stall" => {
                i += 1;
                let v = argv.get(i).ok_or("--inject-stall needs WORKER@CHUNKS")?;
                a.inject_stall = Some(
                    WorkerFault::parse(v)
                        .ok_or_else(|| format!("--inject-stall: bad spec '{v}' (e.g. 2@5)"))?,
                );
            }
            "--workers" => {
                i += 1;
                a.workers = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--workers: int")?;
            }
            "--slots" => {
                i += 1;
                a.slots = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--slots: int")?;
            }
            "--scale" => {
                i += 1;
                a.scale = argv.get(i).and_then(|s| s.parse().ok()).ok_or("--scale: float")?;
            }
            "--stats" => {
                i += 1;
                let v = argv.get(i).ok_or("--stats needs a format (json|text)")?;
                if v != "json" && v != "text" {
                    return Err(format!("--stats: unknown format '{v}' (json|text)"));
                }
                a.stats = Some(v.clone());
            }
            "--out" => {
                i += 1;
                a.out = Some(argv.get(i).cloned().ok_or("--out needs a path")?);
            }
            "--report" => a.mode = "report".into(),
            "--analyze" => a.mode = "analyze".into(),
            "--dot" => a.mode = "dot".into(),
            "--csv" => a.mode = "csv".into(),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(a)
}

fn find_workload(name: &str, scale: Scale) -> Option<Workload> {
    let lower = name.to_ascii_lowercase();
    nas_suite(scale)
        .into_iter()
        .chain(starbench_suite(scale))
        .find(|w| w.meta.name.eq_ignore_ascii_case(&lower))
        .or_else(|| match lower.as_str() {
            "water-spatial" => Some(splash::water_spatial(scale, 8)),
            "racy-counter" => Some(synth::racy_counter(scale, 4)),
            "locked-counter" => Some(synth::locked_counter(scale, 4)),
            _ => None,
        })
}

/// Everything a resumed run needs to rebuild the engine exactly as the
/// interrupted run configured it. Serialized into the checkpoint's CONFIG
/// section, so `depprof replay --resume <dir>` takes no other flags.
struct ReplayConfig {
    trace_path: String,
    parallel: bool,
    transport: TransportKind,
    workers: usize,
    slots: usize,
    checkpoint_every: u64,
    no_redistribution: bool,
}

impl ReplayConfig {
    fn from_args(a: &Args) -> Self {
        ReplayConfig {
            trace_path: a.workload.clone(),
            parallel: a.replay_engine == "parallel",
            transport: a.transport.unwrap_or(TransportKind::Spsc),
            workers: a.workers,
            slots: a.slots,
            checkpoint_every: a.checkpoint_every,
            no_redistribution: a.no_redistribution,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.blob(self.trace_path.as_bytes());
        w.u8(self.parallel as u8);
        w.u8(match self.transport {
            TransportKind::Spsc => 0,
            TransportKind::Mpmc => 1,
            TransportKind::Lock => 2,
        });
        w.u32(self.workers as u32);
        w.u64(self.slots as u64);
        w.u64(self.checkpoint_every);
        w.u8(self.no_redistribution as u8);
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        let trace_path = String::from_utf8(r.blob()?.to_vec())
            .map_err(|_| WireError::Invalid("trace path in checkpoint is not UTF-8"))?;
        let parallel = r.u8()? != 0;
        let transport = match r.u8()? {
            0 => TransportKind::Spsc,
            1 => TransportKind::Mpmc,
            2 => TransportKind::Lock,
            _ => return Err(WireError::Invalid("unknown transport code in checkpoint")),
        };
        let workers = r.u32()? as usize;
        let slots = r.u64()? as usize;
        let checkpoint_every = r.u64()?;
        let no_redistribution = r.u8()? != 0;
        if !r.is_done() {
            return Err(WireError::Invalid("trailing bytes after replay config"));
        }
        Ok(ReplayConfig {
            trace_path,
            parallel,
            transport,
            workers,
            slots,
            checkpoint_every,
            no_redistribution,
        })
    }
}

/// Writes a CLI artifact: to stdout by default, or atomically (hidden
/// temp file + fsync + rename) to `path` — a crash mid-write can never
/// leave a torn or half-written artifact behind.
fn emit(path: Option<&str>, content: &str) {
    match path {
        None => println!("{content}"),
        Some(p) => {
            let mut bytes = content.as_bytes().to_vec();
            bytes.push(b'\n');
            if let Err(e) = atomic_write(Path::new(p), &bytes) {
                eprintln!("cannot write '{p}': {e}");
                std::process::exit(EXIT_INPUT);
            }
            eprintln!("wrote {} bytes to {p}", bytes.len());
        }
    }
}

/// Prints the degraded-profile banner (worker failures plus the
/// Formula-1 coverage estimate). The effective chaos seed rides along so
/// a loss observed under fault injection can be replayed exactly from
/// the log alone.
fn warn_degraded(result: &ProfileResult, chaos_seed: u64) {
    for f in &result.stats.worker_failures {
        eprintln!("WARNING: {f}");
    }
    let d = degradation(result);
    eprintln!(
        "WARNING: {} — expected FNR ~{:.2}% (chaos seed {chaos_seed})",
        d.summary(),
        d.expected_fnr()
    );
}

/// `depprof replay` — feed a recorded trace into an engine, with optional
/// durability: periodic checkpoints, crash resume, and a run watchdog.
fn run_replay(args: &Args) {
    // Resolve the run configuration: a fresh run takes it from the flags,
    // a resumed run from the checkpoint's own CONFIG section.
    let resume_data =
        args.resume.as_ref().map(|dir| match CheckpointStore::open(dir.clone()).load_latest() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot resume from '{dir}': {e}");
                std::process::exit(EXIT_CORRUPT);
            }
        });
    let rc = match &resume_data {
        Some(d) => match ReplayConfig::decode(&d.config) {
            Ok(rc) => rc,
            Err(e) => {
                eprintln!("checkpoint config section is unreadable: {e}");
                std::process::exit(EXIT_CORRUPT);
            }
        },
        None => ReplayConfig::from_args(args),
    };
    let path = rc.trace_path.clone();

    // Open the trace; on resume, skip the records the interrupted run
    // already profiled (the checkpoint records the reader position).
    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open trace file '{path}': {e}");
            std::process::exit(EXIT_INPUT);
        }
    };
    let mut reader = match TraceReader::new(file) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("'{path}': {e}");
            std::process::exit(EXIT_CORRUPT);
        }
    };
    let interner = reader.interner().clone();
    if let Some(d) = &resume_data {
        while reader.records_read() < d.records_read {
            match reader.next() {
                Some(Ok(_)) => {}
                Some(Err(e)) => {
                    eprintln!("'{path}': {e}");
                    std::process::exit(EXIT_CORRUPT);
                }
                None => {
                    eprintln!(
                        "checkpoint was taken {} records in, but '{path}' ends after {}",
                        d.records_read,
                        reader.records_read()
                    );
                    std::process::exit(EXIT_CORRUPT);
                }
            }
        }
        eprintln!(
            "resuming from checkpoint generation {} at record {}",
            d.generation, d.records_read
        );
    }

    // Build (or restore) the engine. Fault-injection knobs (stall,
    // overflow policy) are runtime test levers, deliberately NOT part of
    // the persisted ReplayConfig — a resumed run is healthy by default.
    let chaos_seed = depprof::queue::chaos_seeds(&[0])[0];
    let mut engine = if rc.parallel {
        let mut cfg = ProfilerConfig::default()
            .with_workers(rc.workers)
            .with_slots(rc.slots)
            .with_transport(rc.transport)
            .with_redistribution(!rc.no_redistribution);
        if let Some(p) = args.overflow {
            cfg = cfg.with_overflow(p);
        }
        if let Some(f) = args.inject_stall {
            cfg = cfg.with_fault_plan(
                depprof::core::FaultPlan::none()
                    .with_seed(chaos_seed)
                    .with_stall(f.worker, f.after_chunks),
            );
        }
        if let Some(ms) = args.stall_deadline_ms {
            cfg = cfg.with_stall_deadline_ms(ms);
        }
        let slots = cfg.slots_per_worker();
        let make = move || depprof::sig::Signature::new(slots);
        match &resume_data {
            Some(d) => match AnyParallelProfiler::resume(cfg, make, d) {
                Ok(p) => ProfileSession::Parallel(p),
                Err(e) => {
                    eprintln!("cannot resume the parallel pipeline: {e}");
                    std::process::exit(EXIT_CORRUPT);
                }
            },
            None => ProfileSession::Parallel(AnyParallelProfiler::new(cfg, make)),
        }
    } else {
        let mut p = SequentialProfiler::with_signature(rc.slots);
        if let Some(d) = &resume_data {
            if let Err(e) = p.restore(d) {
                eprintln!("cannot restore the serial engine: {e}");
                std::process::exit(EXIT_CORRUPT);
            }
        }
        ProfileSession::Serial(p)
    };

    // A checkpoint store is needed for periodic checkpoints and for the
    // watchdog's emergency checkpoint. Resumed runs keep writing into the
    // directory they resumed from, preserving the two-generation rotation.
    let store = if rc.checkpoint_every > 0 || args.watchdog_deadline_ms > 0 {
        let dir = args
            .resume
            .clone()
            .or_else(|| args.checkpoint_dir.clone())
            .unwrap_or_else(|| format!("{path}.ckpt"));
        match CheckpointStore::create(dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cannot create checkpoint directory: {e}");
                std::process::exit(EXIT_INPUT);
            }
        }
    } else {
        None
    };

    let mut generation = resume_data.as_ref().map_or(0, |d| d.generation + 1);
    let mut ck = CheckpointMetrics {
        resumed_from: resume_data.as_ref().map_or(0, |d| d.records_read),
        ..CheckpointMetrics::default()
    };

    // The watchdog escalates in two stages: after one deadline without
    // progress it sets the sticky `fired` flag, which the feed loop turns
    // into an emergency checkpoint + exit at the next record boundary;
    // if the feed loop itself is wedged (blocked on a full queue behind a
    // stalled worker) and a second deadline passes, the hard-timeout
    // callback exits directly — the previous on-disk generation survives.
    let watchdog = (args.watchdog_deadline_ms > 0).then(|| {
        Watchdog::spawn(Duration::from_millis(args.watchdog_deadline_ms), || {
            eprintln!("watchdog: pipeline made no progress for two deadlines; giving up");
            std::process::exit(EXIT_WATCHDOG);
        })
    });
    let wd_progress = watchdog.as_ref().map(|w| w.progress_handle());

    // SIGINT/SIGTERM become a final emergency checkpoint + exit code 7
    // instead of a death mid-write: the handler only sets a flag, which
    // the feed loop observes at the next record boundary.
    install_signal_handlers();

    let mut fed: u64 = 0;
    while let Some(rec) = reader.next() {
        let ev = match rec {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("'{path}': {e}");
                std::process::exit(EXIT_CORRUPT);
            }
        };
        engine.on_event(ev);
        fed += 1;
        if shutdown_flag().load(Ordering::SeqCst) {
            if let Some(store) = &store {
                match engine.checkpoint_data(generation, reader.records_read(), rc.encode()) {
                    Ok(data) => match store.write(&data) {
                        Ok(st) => eprintln!(
                            "signal: emergency checkpoint generation {} ({} bytes) written \
                             to '{}'; resume with --resume",
                            st.generation,
                            st.bytes,
                            store.dir().display()
                        ),
                        Err(e) => eprintln!("signal: emergency checkpoint failed: {e}"),
                    },
                    Err(e) => eprintln!("signal: cannot quiesce for emergency checkpoint: {e}"),
                }
            } else {
                eprintln!("signal: terminating (checkpointing is off, nothing to save)");
            }
            std::process::exit(EXIT_SIGNAL);
        }
        if let Some(p) = &wd_progress {
            p.store(fed + engine.heartbeat(), Ordering::Relaxed);
        }
        if watchdog.as_ref().is_some_and(|w| w.fired()) {
            if let Some(store) = &store {
                match engine.checkpoint_data(generation, reader.records_read(), rc.encode()) {
                    Ok(data) => match store.write(&data) {
                        Ok(st) => eprintln!(
                            "watchdog: stalled; emergency checkpoint generation {} \
                             ({} bytes) written to '{}'",
                            st.generation,
                            st.bytes,
                            store.dir().display()
                        ),
                        Err(e) => eprintln!("watchdog: stalled; emergency checkpoint failed: {e}"),
                    },
                    Err(e) => {
                        eprintln!("watchdog: stalled; cannot quiesce for emergency checkpoint: {e}")
                    }
                }
            } else {
                eprintln!("watchdog: stalled (checkpointing is off, nothing to save)");
            }
            std::process::exit(EXIT_WATCHDOG);
        }
        if rc.checkpoint_every > 0 && fed.is_multiple_of(rc.checkpoint_every) {
            if let Some(store) = &store {
                let t0 = Instant::now();
                match engine.checkpoint_data(generation, reader.records_read(), rc.encode()) {
                    Ok(data) => match store.write(&data) {
                        Ok(st) => {
                            ck.generations += 1;
                            ck.last_bytes = st.bytes;
                            ck.write_nanos += t0.elapsed().as_nanos() as u64;
                            generation += 1;
                        }
                        Err(e) => eprintln!("WARNING: checkpoint write failed: {e}"),
                    },
                    Err(e) => eprintln!("WARNING: checkpoint skipped: {e}"),
                }
            }
        }
        // The kill point sits at a record boundary *after* any checkpoint
        // due at it — deterministic, and it exercises the worst case
        // (death immediately after a successful checkpoint write).
        if args.inject_kill_after == Some(fed) {
            eprintln!("fault injection: killing the process after {fed} records");
            // A real SIGKILL (not abort/panic): nothing runs after it — no
            // destructors, no atexit — which is exactly the crash model the
            // checkpoint store must survive.
            #[cfg(unix)]
            {
                let _ = std::process::Command::new("kill")
                    .args(["-KILL", &std::process::id().to_string()])
                    .status();
            }
            std::process::abort(); // non-unix fallback; unreachable on unix
        }
    }
    drop(wd_progress);
    if let Some(w) = watchdog {
        w.stop();
    }

    let mut result = engine.finish();
    result.metrics.checkpoints = ck;
    result.metrics.chaos_seed = chaos_seed;

    eprintln!("{}", report::summary(&result));
    let content = match args.stats.as_deref() {
        Some("json") => result.metrics.to_json(),
        Some(_) => result.metrics.to_text(),
        None => report::render(&result, &interner, false),
    };
    emit(args.out.as_deref(), &content);

    if degradation(&result).degraded() {
        warn_degraded(&result, chaos_seed);
        std::process::exit(EXIT_DEGRADED);
    }
}

/// `depprof serve` — run the profiler as a long-lived network service.
/// Listens for DPSV v1 connections, one profiling session per client,
/// until SIGINT/SIGTERM; in-flight sessions are emergency-checkpointed
/// on shutdown and resumed when their clients reconnect.
fn run_serve(args: &Args) {
    let cfg = ServerConfig {
        max_sessions: args.max_sessions,
        checkpoint_dir: args.checkpoint_dir.as_ref().map(PathBuf::from),
        checkpoint_every: args.checkpoint_every,
        busy_retry_ms: args.busy_retry_ms,
        hibernate_after_ms: args.hibernate_after_ms,
        fault_plan: args.chaos_plan.clone().unwrap_or_default(),
        ..ServerConfig::default()
    };
    if let Some(plan) = &args.chaos_plan {
        eprintln!("chaos: injecting network faults on every accepted connection: {plan:?}");
    }
    #[cfg(unix)]
    let server = if let Some(path) = &args.unix_sock {
        match Server::bind_unix(path, cfg) {
            Ok(s) => {
                eprintln!("serving DPSV on unix socket {path}");
                s
            }
            Err(e) => {
                eprintln!("cannot bind unix socket '{path}': {e}");
                std::process::exit(EXIT_INPUT);
            }
        }
    } else {
        bind_tcp_or_die(args, cfg)
    };
    #[cfg(not(unix))]
    let server = {
        if args.unix_sock.is_some() {
            eprintln!("--unix is only available on unix platforms");
            std::process::exit(EXIT_USAGE);
        }
        bind_tcp_or_die(args, cfg)
    };

    install_signal_handlers();
    if let Err(e) = server.run(shutdown_flag()) {
        eprintln!("server accept loop failed: {e}");
        std::process::exit(EXIT_INPUT);
    }
    // run() only returns once the stop flag is raised and every
    // connection thread has written its emergency checkpoint.
    eprintln!("signal: server stopped; in-flight sessions checkpointed");
    std::process::exit(EXIT_SIGNAL);
}

fn bind_tcp_or_die(args: &Args, cfg: ServerConfig) -> Server {
    let addr = args.listen.as_deref().unwrap_or("127.0.0.1:7077");
    match Server::bind_tcp(addr, cfg) {
        // Print the *bound* address: `--listen 127.0.0.1:0` picks an
        // ephemeral port, and scripts parse this line to find it.
        Ok(s) => {
            match s.local_addr() {
                Some(a) => eprintln!("serving DPSV on {a}"),
                None => eprintln!("serving DPSV on {addr}"),
            }
            s
        }
        Err(e) => {
            eprintln!("cannot bind '{addr}': {e}");
            std::process::exit(EXIT_INPUT);
        }
    }
}

/// `depprof fuzz` — run the differential fuzz campaign: seeded MiniVM
/// programs through every engine (serial, three parallel transports,
/// served over DPSV, killed-and-resumed), dependence-for-dependence,
/// plus undersized-signature accuracy vs Formula 2 and the web-scale
/// Zipfian stress. Exit 1 when any divergence survives.
fn run_fuzz_cmd(args: &Args) {
    let opts = depprof::fuzz::FuzzOpts {
        seeds: args.seeds,
        start_seed: args.start_seed,
        quick: args.quick,
        corpus_dir: args.corpus.as_ref().map(PathBuf::from),
        webscale: !args.no_webscale,
        workers: args.workers,
        ..depprof::fuzz::FuzzOpts::default()
    };
    eprintln!(
        "fuzzing {} seeds from {} ({} mode, {} workers) ...",
        opts.seeds,
        opts.start_seed,
        if opts.quick { "quick" } else { "full" },
        opts.workers
    );
    let start = Instant::now();
    let report = depprof::fuzz::run_fuzz(&opts, &mut |line| eprintln!("{line}"));
    eprintln!(
        "fuzz: {} seeds ({} sequential x 12 legs, {} multi-threaded), {} accesses, \
         {} webscale streams, {:.1}s",
        report.seeds,
        report.sequential,
        report.mt,
        report.total_accesses,
        report.webscale_runs,
        start.elapsed().as_secs_f64()
    );
    if !report.samples.is_empty() {
        eprintln!(
            "fuzz: accuracy over {} undersized runs: mean FPR {:.2}% / FNR {:.2}% \
             vs Formula-2 dep-level bound {:.2}% — {}",
            report.samples.len(),
            report.mean_fpr(),
            report.mean_fnr(),
            report.mean_dep_bound(),
            if report.accuracy_within_formula2() { "within bound" } else { "EXCEEDED" }
        );
    }
    for d in &report.divergences {
        eprintln!(
            "fuzz: DIVERGENCE seed {} leg {} ({} stmts minimized){}: {}",
            d.seed,
            d.leg,
            d.stmts,
            d.corpus_path.as_ref().map(|p| format!(", repro {}", p.display())).unwrap_or_default(),
            d.detail
        );
    }
    for e in &report.webscale_failures {
        eprintln!("fuzz: WEBSCALE FAILURE: {e}");
    }
    if report.passed() {
        eprintln!("fuzz: all engines agree");
    } else {
        std::process::exit(1);
    }
}

/// `depprof push` — stream a recorded trace to a running `serve` and
/// print the report it sends back. If the server resumed the session
/// from a checkpoint, the already-profiled prefix is skipped client-side.
/// Connection refusals and mid-stream disconnects are retried with
/// bounded, jittered backoff ([`push_with_retry`]); the jitter seed is
/// the process id so a fleet of pushers does not reconnect in lockstep.
fn run_push(args: &Args) {
    let path = &args.workload;
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open trace file '{path}': {e}");
            std::process::exit(EXIT_INPUT);
        }
    };
    let mut reader = match TraceReader::new(file) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("'{path}': {e}");
            std::process::exit(EXIT_CORRUPT);
        }
    };
    let interner = reader.interner().clone();
    let names: Vec<String> =
        (0..interner.len()).map(|id| interner.resolve(id as u32).to_owned()).collect();

    let session = args.session.clone().unwrap_or_else(|| {
        Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "default".into())
    });
    let opts = PushOptions {
        session,
        spec: SessionSpec {
            parallel: args.replay_engine == "parallel",
            transport: args.transport.unwrap_or(TransportKind::Spsc),
            overflow: args.overflow.unwrap_or(OverflowPolicy::Block),
            redistribution: !args.no_redistribution,
            workers: args.workers,
            slots: args.slots,
        },
        checkpoint_every: args.checkpoint_every,
        chunk_events: args.chunk_events,
        throttle_ms: args.throttle_ms,
        request_stats: args.stats.as_deref() == Some("json"),
        sync_every_chunks: args.sync_every,
        watch_ms: args.watch,
    };

    // The whole trace is loaded up front: a retry must be able to
    // replay the stream from the server's resume watermark, which an
    // already-consumed reader cannot. A corrupt record aborts the push
    // before the first connection attempt, not mid-session.
    let mut events = Vec::new();
    for ev in reader.by_ref() {
        match ev {
            Ok(ev) => events.push(ev),
            Err(e) => {
                eprintln!("'{path}': {e}");
                std::process::exit(EXIT_CORRUPT);
            }
        }
    }

    let policy = RetryPolicy {
        max_attempts: args.retries,
        base_delay_ms: args.retry_delay_ms,
        max_delay_ms: args.retry_delay_ms.saturating_mul(20).max(1_000),
        seed: std::process::id() as u64,
    };
    // The chaos wrapper is always in the path; an empty plan is a
    // transparent passthrough, so the clean case pays only the frame
    // accounting.
    let plan = args.chaos_plan.clone().unwrap_or_default();

    let outcome = if let Some(addr) = &args.connect {
        push_with_retry(
            || {
                let c = std::net::TcpStream::connect(addr)?;
                c.set_nodelay(true).ok();
                Ok(ChaosStream::new(c, plan.clone()))
            },
            &names,
            &events,
            &opts,
            &policy,
        )
    } else {
        #[cfg(unix)]
        {
            let sock = args.unix_sock.as_ref().expect("parse() requires --connect or --unix");
            push_with_retry(
                || {
                    std::os::unix::net::UnixStream::connect(sock)
                        .map(|c| ChaosStream::new(c, plan.clone()))
                },
                &names,
                &events,
                &opts,
                &policy,
            )
        }
        #[cfg(not(unix))]
        {
            eprintln!("--unix is only available on unix platforms");
            std::process::exit(EXIT_USAGE);
        }
    };

    match outcome {
        Ok(r) => {
            let out = &r.outcome;
            if out.resumed_from > 0 {
                eprintln!(
                    "server resumed session '{}' from event {}; sent {} remaining events",
                    opts.session, out.resumed_from, out.events_sent
                );
            } else {
                eprintln!("sent {} events to session '{}'", out.events_sent, opts.session);
            }
            if r.reconnects > 0 || r.busy_waits > 0 {
                eprintln!(
                    "push survived {} reconnect(s) and {} busy wait(s) \
                     ({} events resent, {}ms recovering)",
                    r.reconnects, r.busy_waits, r.events_resent, r.recovery_ms_total
                );
            }
            if let Some(dump) = args.watch_dump.as_deref() {
                match &out.last_query_json {
                    Some(json) => {
                        if let Err(e) = std::fs::write(dump, json) {
                            eprintln!("cannot write --watch-dump '{dump}': {e}");
                            std::process::exit(1);
                        }
                    }
                    None => eprintln!(
                        "--watch-dump '{dump}': no QueryResult captured (pass --watch to enable \
                         live analysis queries)"
                    ),
                }
            }
            let content = match (&out.stats_json, args.stats.as_deref()) {
                (Some(json), Some("json")) => json.clone(),
                _ => out.report.clone(),
            };
            emit(args.out.as_deref(), &content);
        }
        Err(e) => {
            // Backpressure is not a failure of the push, it is the server
            // asking us to come back later — give scripts a distinct code
            // and a concrete retry hint.
            let busy_hint = match &e {
                ClientError::Busy { retry_after_ms } => Some(*retry_after_ms),
                ClientError::Server { code, .. }
                    if *code == depprof::types::protocol::error_code::AT_CAPACITY =>
                {
                    Some(args.busy_retry_ms)
                }
                _ => None,
            };
            if let Some(after_ms) = busy_hint {
                eprintln!("push refused: {e}");
                eprintln!(
                    "server is at capacity; retry in ~{after_ms}ms or raise its \
                     --max-sessions (exit code {EXIT_BUSY})"
                );
                std::process::exit(EXIT_BUSY);
            }
            eprintln!("push failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            if e != "usage" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage:\n  depprof list\n  depprof profile <workload> \
                 [--engine serial|parallel|lock-based|perfect] \
                 [--transport spsc|mpmc|lock] [--overflow block|drop] \
                 [--workers N] [--slots N] [--scale F] \
                 [--inject-panic W@N] [--inject-stall W@N] \
                 [--report|--analyze|--dot|--csv] [--stats json|text] [--out PATH]\n  \
                 depprof record <workload> [--out trace.dptr] [--scale F]\n  \
                 depprof replay <trace.dptr> [--engine serial|parallel] \
                 [--transport spsc|mpmc|lock] [--workers N] [--slots N] \
                 [--checkpoint-every N] [--checkpoint-dir DIR] \
                 [--watchdog-deadline MS] [--inject-kill-after N] \
                 [--no-redistribution] [--stats json|text] [--report-out PATH]\n  \
                 depprof replay --resume <dir> [--watchdog-deadline MS] \
                 [--stats json|text] [--report-out PATH]\n  \
                 depprof serve [--listen HOST:PORT] [--unix PATH] \
                 [--max-sessions N] [--checkpoint-dir DIR] [--checkpoint-every N] \
                 [--busy-retry-ms MS] [--hibernate-after MS] [--chaos SPEC]\n  \
                 depprof push <trace.dptr> (--connect HOST:PORT | --unix PATH) \
                 [--session NAME] [--engine serial|parallel] \
                 [--transport spsc|mpmc|lock] [--overflow block|drop] \
                 [--workers N] [--slots N] [--checkpoint-every N] \
                 [--chunk-events N] [--throttle-ms MS] [--retries N] \
                 [--retry-delay-ms MS] [--sync-every N] [--chaos SPEC] \
                 [--watch[=MS]] [--watch-dump PATH] \
                 [--no-redistribution] [--stats json] [--report-out PATH]\n  \
                 depprof fuzz [--seeds N] [--start-seed N] [--quick] \
                 [--corpus DIR] [--no-webscale] [--workers N]\n\n\
                 exit codes: 0 ok, 2 usage, 3 missing input, 4 corrupt trace or \
                 checkpoint, 5 degraded profile, 6 watchdog gave up, \
                 7 terminated by signal, 8 server busy (retry later)"
            );
            std::process::exit(EXIT_USAGE);
        }
    };

    if args.engine == "record" {
        // `depprof record <workload> --out trace.dptr`
        let path = if args.mode == "trace" { "trace.dptr".to_string() } else { args.mode.clone() };
        let Some(w) = find_workload(&args.workload, Scale(args.scale)) else {
            eprintln!("unknown workload '{}'", args.workload);
            std::process::exit(EXIT_INPUT);
        };
        if w.meta.parallel {
            eprintln!(
                "recording multi-threaded targets is not supported (their event order \
                 is schedule-dependent); profile them live with `depprof profile`"
            );
            std::process::exit(EXIT_USAGE);
        }
        // Stream to a sibling temp file and rename at the end, so an
        // interrupted recording never leaves a truncated trace under the
        // final name (a previous complete recording survives untouched).
        let tmp = format!("{path}.tmp.{}", std::process::id());
        let file = match std::fs::File::create(&tmp) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create trace file '{tmp}': {e}");
                std::process::exit(EXIT_INPUT);
            }
        };
        let mut wtr = match depprof::trace::TraceWriter::with_names(file, &w.program.interner) {
            Ok(wtr) => wtr,
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                eprintln!("cannot write trace header to '{tmp}': {e}");
                std::process::exit(EXIT_INPUT);
            }
        };
        let vm = depprof::trace::Interp::new(&w.program);
        vm.run_seq(&mut wtr);
        let events = wtr.events();
        if let Err(e) = wtr.finish() {
            let _ = std::fs::remove_file(&tmp);
            eprintln!("cannot flush trace to '{tmp}': {e}");
            std::process::exit(EXIT_INPUT);
        }
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            eprintln!("cannot move finished trace into place at '{path}': {e}");
            std::process::exit(EXIT_INPUT);
        }
        eprintln!("recorded {events} events of {} to {path}", w.meta.name);
        return;
    }
    if args.engine == "replay" {
        run_replay(&args);
        return;
    }
    if args.engine == "serve" {
        run_serve(&args);
        return;
    }
    if args.engine == "push" {
        run_push(&args);
        return;
    }
    if args.engine == "fuzz" {
        run_fuzz_cmd(&args);
        return;
    }
    if args.workload == "list" {
        println!("NAS:       BT SP LU IS EP CG MG FT");
        println!(
            "Starbench: c-ray kmeans md5 ray-rot rgbyuv rotate rot-cc streamcluster \
             tinyjpeg bodytrack h264dec"
        );
        println!("SPLASH:    water-spatial (8 target threads)");
        println!("synthetic: racy-counter locked-counter (4 target threads)");
        return;
    }

    let Some(w) = find_workload(&args.workload, Scale(args.scale)) else {
        eprintln!("unknown workload '{}' (try `depprof list`)", args.workload);
        std::process::exit(EXIT_INPUT);
    };

    let mut cfg = ProfilerConfig::default().with_workers(args.workers).with_slots(args.slots);
    if let Some(p) = args.overflow {
        cfg = cfg.with_overflow(p);
    }
    let chaos_seed = depprof::queue::chaos_seeds(&[0])[0];
    let mut plan = depprof::core::FaultPlan::none().with_seed(chaos_seed);
    if let Some(f) = args.inject_panic {
        plan = plan.with_panic(f.worker, f.after_chunks);
    }
    if let Some(f) = args.inject_stall {
        plan = plan.with_stall(f.worker, f.after_chunks);
    }
    cfg = cfg.with_fault_plan(plan);
    let mut result = if w.meta.parallel {
        eprintln!(
            "profiling {} ({} target threads) with the multi-threaded engine, {} workers ...",
            w.meta.name, w.meta.nthreads, args.workers
        );
        depprof::profile_mt(&w.program, cfg)
    } else {
        match args.engine.as_str() {
            "serial" => {
                eprintln!("profiling {} with the serial signature engine ...", w.meta.name);
                depprof::profile_sequential(&w.program, args.slots)
            }
            "perfect" => {
                eprintln!("profiling {} with the perfect-signature baseline ...", w.meta.name);
                depprof::profile_sequential_perfect(&w.program)
            }
            "parallel" => {
                // The target is sequential (one producer), so the SPSC
                // fast path is the default unless --transport overrides.
                let cfg = cfg.with_transport(args.transport.unwrap_or(TransportKind::Spsc));
                eprintln!(
                    "profiling {} with the parallel pipeline ({} transport), {} workers ...",
                    w.meta.name,
                    cfg.transport.name(),
                    args.workers
                );
                depprof::profile_parallel(&w.program, cfg)
            }
            "lock-based" => {
                eprintln!(
                    "profiling {} with the lock-based pipeline, {} workers ...",
                    w.meta.name, args.workers
                );
                depprof::profile_parallel(&w.program, cfg.with_transport(TransportKind::Lock))
            }
            other => {
                eprintln!("unknown engine '{other}'");
                std::process::exit(EXIT_USAGE);
            }
        }
    };

    result.metrics.chaos_seed = chaos_seed;
    eprintln!("{}\n", report::summary(&result));
    if let Some(fmt) = &args.stats {
        // Stats mode replaces the report: stdout carries *only* the
        // snapshot so `depprof ... --stats json | jq` works unpiped.
        let content = match fmt.as_str() {
            "json" => result.metrics.to_json(),
            _ => result.metrics.to_text(),
        };
        emit(args.out.as_deref(), &content);
        if degradation(&result).degraded() {
            warn_degraded(&result, chaos_seed);
            std::process::exit(EXIT_DEGRADED);
        }
        return;
    }
    let content = match args.mode.as_str() {
        "report" => report::render(&result, &w.program.interner, w.meta.parallel),
        "dot" => {
            let g = depprof::analysis::DepGraph::build(&result);
            g.to_dot(w.meta.parallel)
        }
        "csv" => report::to_csv(&result, &w.program.interner),
        "analyze" => {
            let metas: Vec<LoopMeta> = w
                .program
                .loops
                .iter()
                .map(|l| LoopMeta { id: l.id, name: l.name.clone(), omp: l.omp })
                .collect();
            let mut fw = Framework::with_builtin();
            let mut out = String::new();
            for (name, fragment) in fw.run(
                &result,
                &w.program.interner,
                &metas,
                &w.program.func_names,
                if w.meta.parallel { w.meta.nthreads as usize + 1 } else { 0 },
            ) {
                out.push_str(&format!("== {name} ==\n{fragment}\n\n"));
            }
            // Drop the final separator newline so stdout output matches
            // the previous per-fragment println formatting exactly.
            out.pop();
            out
        }
        _ => unreachable!(),
    };
    emit(args.out.as_deref(), &content);

    // The dependences that WERE reported are exact; the banner and exit
    // code make the coverage loss impossible to miss in scripts and CI.
    if degradation(&result).degraded() {
        warn_degraded(&result, chaos_seed);
        std::process::exit(EXIT_DEGRADED);
    }
}
