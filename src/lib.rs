//! # depprof — an efficient data-dependence profiler for sequential and parallel programs
//!
//! A faithful, from-scratch Rust reproduction of Li, Jannesari & Wolf,
//! *"An Efficient Data-Dependence Profiler for Sequential and Parallel
//! Programs"* (IPDPS 2015) — the generic profiler underlying the DiscoPoP
//! line of work.
//!
//! The profiler extracts pair-wise RAW/WAR/WAW data dependences (plus
//! INIT records and runtime control-flow information) from an
//! instrumented execution, with:
//!
//! - **bounded memory** via fixed-size single-hash *signatures*
//!   ([`sig::Signature`], Section III-B of the paper),
//! - **low time overhead** via a *lock-free parallel pipeline*
//!   ([`core::ParallelProfiler`], Section IV),
//! - support for **multi-threaded target programs** with thread-aware
//!   dependence records and data-race hints ([`core::MtProfiler`],
//!   Section V),
//! - ready-made dependence-based analyses: parallelism discovery,
//!   communication patterns, race hints, accuracy evaluation
//!   ([`analysis`], Sections VI–VII).
//!
//! ## Quickstart
//!
//! ```
//! use depprof::prelude::*;
//!
//! // Build a tiny program with the MiniVM builder...
//! let mut b = ProgramBuilder::new("demo");
//! let a = b.array("data", 64);
//! let program = b.main(|f| {
//!     f.for_loop("init", true, c(0), c(64), |f, i| {
//!         f.store(a, i.clone(), i); // data[i] = i
//!     });
//!     f.for_loop("sum", true, c(0), c(63), |f, i| {
//!         let v = f.ld(a, i.clone()) + f.ld(a, i.clone() + c(1));
//!         f.store(a, i, v); // data[i] += data[i+1]
//!     });
//! });
//!
//! // ...and profile it with the serial signature engine.
//! let result = depprof::profile_sequential(&program, 1 << 16);
//! assert!(result.stats.deps_merged > 0);
//! println!("{}", depprof::core::report::render(&result, &program.interner, false));
//! ```
//!
//! See `examples/` for parallelism discovery, communication patterns,
//! lock-free parallel profiling and race hunting.

pub use dp_analysis as analysis;
pub use dp_core as core;
pub use dp_fuzz as fuzz;
pub use dp_queue as queue;
pub use dp_server as server;
pub use dp_sig as sig;
pub use dp_trace as trace;
pub use dp_types as types;

use dp_core::{MtProfiler, ProfileResult, ProfilerConfig, SequentialProfiler, TransportKind};
use dp_trace::{Interp, Program};

/// Commonly used items, one `use` away.
pub mod prelude {
    pub use dp_analysis::{
        classify_loops, communication_matrix, compare, find_races, privatization_candidates,
        schedule_waves, section_dag, union_runs, DepGraph, Framework, LoopMeta, LoopTable,
        SectionMeta,
    };
    pub use dp_core::{
        DepStore, MtProfiler, ProfileResult, ProfilerConfig, SequentialProfiler, TransportKind,
    };
    pub use dp_sig::{predicted_fpr, AccessStore, PerfectSignature, Signature};
    pub use dp_trace::builder::{c, lv, nthreads, rnd, tid};
    pub use dp_trace::{
        Interp, NullTracer, ProgramBuilder, TraceFileError, TraceReader, TraceWriter, TracedCell,
        TracedVec, TracerHandle,
    };
    pub use dp_types::{DepType, Tracer, TracerFactory};
}

/// Profiles a sequential MiniVM program with the serial signature engine
/// (`nslots` slots per signature).
pub fn profile_sequential(program: &Program, nslots: usize) -> ProfileResult {
    let vm = Interp::new(program);
    let mut prof = SequentialProfiler::with_signature(nslots);
    vm.run_seq(&mut prof);
    prof.finish()
}

/// Profiles a sequential MiniVM program with the perfect-signature
/// baseline (exact; Section VI-A).
pub fn profile_sequential_perfect(program: &Program) -> ProfileResult {
    let vm = Interp::new(program);
    let mut prof = SequentialProfiler::perfect();
    vm.run_seq(&mut prof);
    prof.finish()
}

/// Profiles a sequential MiniVM program with the parallel pipeline
/// (Section IV) over the transport named by [`ProfilerConfig::transport`]
/// — SPSC fast path, lock-free MPMC, or the lock-based comparator. All
/// three produce bit-identical dependence sets.
pub fn profile_parallel(program: &Program, cfg: ProfilerConfig) -> ProfileResult {
    let vm = Interp::new(program);
    let slots = cfg.slots_per_worker();
    let mut prof: dp_core::AnyParallelProfiler<dp_sig::Signature<dp_sig::ExtendedSlot>> =
        dp_core::AnyParallelProfiler::new(cfg, move || dp_sig::Signature::new(slots));
    vm.run_seq(&mut prof);
    prof.finish()
}

/// Profiles a sequential MiniVM program with the SPSC fast-path pipeline
/// — the lowest-overhead transport, sound exactly because a sequential
/// target has a single producing thread.
pub fn profile_parallel_spsc(program: &Program, cfg: ProfilerConfig) -> ProfileResult {
    profile_parallel(program, cfg.with_transport(TransportKind::Spsc))
}

/// Profiles a multi-threaded MiniVM program (Section V). Dependence
/// records carry thread ids; timestamp reversals flag potential races.
pub fn profile_mt(program: &Program, cfg: ProfilerConfig) -> ProfileResult {
    let vm = Interp::new(program);
    let prof = MtProfiler::new(cfg);
    vm.run_mt(&prof);
    prof.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_trace::builder::{c, ProgramBuilder};

    fn demo_program() -> Program {
        let mut b = ProgramBuilder::new("demo");
        let a = b.array("data", 64);
        b.main(|f| {
            f.for_loop("init", true, c(0), c(64), |f, i| {
                f.store(a, i.clone(), i);
            });
        })
    }

    #[test]
    fn facade_sequential() {
        let p = demo_program();
        let r = profile_sequential(&p, 1 << 12);
        assert_eq!(r.stats.writes, 64);
    }

    #[test]
    fn facade_parallel_matches_perfect() {
        let p = demo_program();
        let base = profile_sequential_perfect(&p);
        let par =
            profile_parallel(&p, ProfilerConfig::default().with_workers(2).with_slots(1 << 14));
        assert_eq!(base.stats.accesses, par.stats.accesses);
        assert_eq!(base.stats.deps_merged, par.stats.deps_merged);
    }

    #[test]
    fn facade_spsc_matches_other_transports() {
        let p = demo_program();
        let cfg = || ProfilerConfig::default().with_workers(2).with_slots(1 << 14);
        let spsc = profile_parallel_spsc(&p, cfg());
        let mpmc = profile_parallel(&p, cfg().with_transport(TransportKind::Mpmc));
        let lock = profile_parallel(&p, cfg().with_transport(TransportKind::Lock));
        let sets: Vec<Vec<_>> = [&spsc, &mpmc, &lock]
            .iter()
            .map(|r| {
                let mut v: Vec<_> = r.deps.dependences().map(|(d, e)| (d, e.count)).collect();
                v.sort();
                v
            })
            .collect();
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[1], sets[2]);
    }
}
