//! Parallelism discovery on a NAS mini (the DiscoPoP use case,
//! Section VII-A / Table II of the paper).
//!
//! ```text
//! cargo run --release --example parallelism_discovery [program]
//! ```
//!
//! Profiles the chosen NAS benchmark (default: CG), classifies every loop
//! from the dependence evidence, and compares against the OpenMP ground
//! truth. CG is the interesting one: its seven dot-product reductions are
//! OpenMP-parallelizable (via `reduction` clauses) but must *not* be
//! identified by a pure dependence test.

use depprof::analysis::{classify_loops, LoopClass, LoopMeta};
use depprof::trace::workloads::{nas_suite, Scale};

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "CG".into());
    let suite = nas_suite(Scale(0.2));
    let w = suite
        .iter()
        .find(|w| w.meta.name.eq_ignore_ascii_case(&want))
        .unwrap_or_else(|| panic!("unknown NAS program '{want}'"));

    println!("profiling {} ...", w.meta.name);
    let result = depprof::profile_sequential(&w.program, 1 << 20);
    println!(
        "{} accesses, {} distinct dependences\n",
        result.stats.accesses, result.stats.deps_merged
    );

    let metas: Vec<LoopMeta> = w
        .program
        .loops
        .iter()
        .map(|l| LoopMeta { id: l.id, name: l.name.clone(), omp: l.omp })
        .collect();
    let verdicts = classify_loops(&result, &metas);

    println!("{:<22} {:>6} {:>12} {:>10}  blockers", "loop", "OMP?", "class", "iters");
    println!("{}", "-".repeat(70));
    let mut identified = 0;
    let mut omp = 0;
    for v in &verdicts {
        let class = match v.class {
            LoopClass::Doall => "DOALL",
            LoopClass::Reduction => "reduction",
            LoopClass::Sequential => "sequential",
            LoopClass::NotExecuted => "(not run)",
        };
        if v.meta.omp {
            omp += 1;
            if v.identified() {
                identified += 1;
            }
        }
        let blockers = if v.blockers.is_empty() {
            String::new()
        } else {
            let (sink, src, var) = v.blockers[0];
            format!("{}: {} -> {}", w.program.interner.resolve(var), src, sink)
        };
        println!(
            "{:<22} {:>6} {:>12} {:>10}  {}",
            v.meta.name,
            if v.meta.omp { "yes" } else { "no" },
            class,
            v.iterations,
            blockers
        );
    }
    println!(
        "\n{identified} of {omp} OpenMP-annotated loops identified as parallelizable \
         (paper's Table II row for {}: {})",
        w.meta.name,
        match w.meta.name.as_str() {
            "BT" => "30/30",
            "SP" => "34/34",
            "LU" => "33/33",
            "IS" => "8/11",
            "EP" => "1/1",
            "CG" => "9/16",
            "MG" => "14/14",
            "FT" => "7/8",
            _ => "?",
        }
    );
}
