//! Communication-pattern detection on SPLASH water-spatial
//! (Section VII-B / Figure 9 of the paper).
//!
//! ```text
//! cargo run --release --example comm_pattern [nthreads]
//! ```
//!
//! Runs the multi-threaded water-spatial mini under the MT profiler and
//! derives the producer/consumer communication matrix from cross-thread
//! RAW dependences. Expect near-neighbour banding: each spatial box reads
//! the boundary molecules of its ring neighbours.

use depprof::analysis::communication_matrix;
use depprof::prelude::*;
use depprof::trace::workloads::splash;
use depprof::trace::workloads::Scale;

fn main() {
    let nthreads: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let w = splash::water_spatial(Scale(0.2), nthreads);

    println!("profiling water-spatial with {nthreads} target threads ...");
    let cfg = ProfilerConfig::default().with_workers(8).with_slots(1 << 20);
    let result = depprof::profile_mt(&w.program, cfg);
    println!(
        "{} accesses across {} target threads, {} distinct dependences\n",
        result.stats.accesses,
        nthreads + 1,
        result.stats.deps_merged
    );

    let m = communication_matrix(&result, nthreads as usize + 1);
    println!("communication matrix (producers on rows, thread 0 = main):\n");
    println!("{}", m.render_ascii());
    println!("total cross-thread communication events: {}", m.total());

    // Show the strongest producer→consumer pairs explicitly.
    let mut pairs = Vec::new();
    for p in 0..m.dim() as u16 {
        for c in 0..m.dim() as u16 {
            if m.get(p, c) > 0 {
                pairs.push((m.get(p, c), p, c));
            }
        }
    }
    pairs.sort_unstable_by(|a, b| b.cmp(a));
    println!("\nstrongest flows:");
    for (v, p, c) in pairs.iter().take(8) {
        println!("  thread {p} -> thread {c}: {v}");
    }
}
