//! The lock-free parallel pipeline on a Starbench mini (Section IV /
//! Figure 2 of the paper), with the lock-based comparator and the serial
//! engine for contrast.
//!
//! ```text
//! cargo run --release --example parallel_pipeline [program]
//! ```

use depprof::core::parallel::{LockBasedProfiler, LockFreeProfiler};
use depprof::core::{DefaultSig, ParallelProfiler, SequentialProfiler};
use depprof::prelude::*;
use depprof::sig::ExtendedSlot;
use depprof::trace::workloads::{starbench_suite, Scale};
use std::time::Instant;

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "kmeans".into());
    let suite = starbench_suite(Scale(0.5));
    let w = suite
        .iter()
        .find(|w| w.meta.name == want)
        .unwrap_or_else(|| panic!("unknown Starbench program '{want}'"));
    let total_slots = 1 << 20;

    // Native (uninstrumented) run.
    let vm = Interp::new(&w.program);
    let t0 = Instant::now();
    vm.run_seq(&mut NullTracer);
    let native = t0.elapsed();
    println!("{}: native {:.1} ms", w.meta.name, native.as_secs_f64() * 1e3);

    // Serial profiler.
    let vm = Interp::new(&w.program);
    let mut serial = SequentialProfiler::with_signature(total_slots);
    let t0 = Instant::now();
    vm.run_seq(&mut serial);
    let st = t0.elapsed();
    let sr = serial.finish();
    println!(
        "serial:        {:>8.1} ms ({:.1}x), {} deps, {} B profiler memory",
        st.as_secs_f64() * 1e3,
        st.as_secs_f64() / native.as_secs_f64(),
        sr.stats.deps_merged,
        sr.memory.total()
    );

    // Lock-free pipeline, 8 workers.
    let cfg = ProfilerConfig::default().with_workers(8).with_slots(total_slots);
    let slots = cfg.slots_per_worker();
    let vm = Interp::new(&w.program);
    let mut free: LockFreeProfiler<DefaultSig> =
        ParallelProfiler::new(cfg.clone(), move || Signature::<ExtendedSlot>::new(slots));
    let t0 = Instant::now();
    vm.run_seq(&mut free);
    let ft = t0.elapsed();
    let fr = free.finish();
    println!(
        "8T lock-free:  {:>8.1} ms ({:.1}x), {} deps, {} chunks, {} redistributions",
        ft.as_secs_f64() * 1e3,
        ft.as_secs_f64() / native.as_secs_f64(),
        fr.stats.deps_merged,
        fr.stats.chunks_pushed,
        fr.stats.redistributions
    );

    // Lock-based comparator, 8 workers.
    let vm = Interp::new(&w.program);
    let mut locked: LockBasedProfiler<DefaultSig> =
        ParallelProfiler::new(cfg, move || Signature::<ExtendedSlot>::new(slots));
    let t0 = Instant::now();
    vm.run_seq(&mut locked);
    let lt = t0.elapsed();
    let lr = locked.finish();
    println!(
        "8T lock-based: {:>8.1} ms ({:.1}x), {} deps",
        lt.as_secs_f64() * 1e3,
        lt.as_secs_f64() / native.as_secs_f64(),
        lr.stats.deps_merged
    );

    // The engines must agree on the dependences.
    assert_eq!(sr.stats.accesses, fr.stats.accesses);
    assert_eq!(fr.stats.accesses, lr.stats.accesses);
    println!(
        "\nall engines processed {} accesses; lock-free vs lock-based queue gap: {:.2}x",
        sr.stats.accesses,
        lt.as_secs_f64() / ft.as_secs_f64()
    );
}
