//! Tour of the integrated program-analysis framework (Section VIII of the
//! paper): profile once, reorganize the data into the dependence graph,
//! loop table and dynamic execution tree, run the bundled analyses, and
//! plug in a custom one.
//!
//! ```text
//! cargo run --release --example framework_tour [program]
//! ```

use depprof::analysis::{privatization_candidates, Analysis, AnalysisContext, Framework, LoopMeta};
use depprof::trace::workloads::{nas_suite, Scale};

/// A custom plugin: ranks the hottest dependences by dynamic count —
/// something a performance-tuning tool would surface first.
struct HotDeps {
    top: usize,
}

impl Analysis for HotDeps {
    fn name(&self) -> &str {
        "hot-dependences"
    }

    fn run(&mut self, ctx: &AnalysisContext<'_>) -> String {
        let mut all: Vec<_> = ctx.result.deps.dependences().collect();
        all.sort_by_key(|(_, v)| std::cmp::Reverse(v.count));
        all.iter()
            .take(self.top)
            .map(|(d, v)| {
                format!(
                    "{:>8}x {:?} {} <- {} on '{}'",
                    v.count,
                    d.edge.dtype,
                    d.sink.loc,
                    d.edge.source_loc,
                    ctx.interner.get(d.edge.var).unwrap_or("?")
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "FT".into());
    let suite = nas_suite(Scale(0.1));
    let w = suite
        .iter()
        .find(|w| w.meta.name.eq_ignore_ascii_case(&want))
        .unwrap_or_else(|| panic!("unknown NAS program '{want}'"));

    println!("profiling {} ...\n", w.meta.name);
    let result = depprof::profile_sequential(&w.program, 1 << 20);

    let metas: Vec<LoopMeta> = w
        .program
        .loops
        .iter()
        .map(|l| LoopMeta { id: l.id, name: l.name.clone(), omp: l.omp })
        .collect();

    // The framework: built-in plugins + a custom one.
    let mut fw = Framework::with_builtin();
    fw.register(Box::new(HotDeps { top: 5 }));
    for (name, fragment) in fw.run(&result, &w.program.interner, &metas, &w.program.func_names, 0) {
        println!("== {name} ==\n{fragment}\n");
    }

    // Privatization advice on top of the loop verdicts.
    let privs = privatization_candidates(&result, &metas);
    if privs.is_empty() {
        println!("== privatization == none needed");
    } else {
        println!("== privatization ==");
        for p in privs {
            let lname =
                metas.iter().find(|m| m.id == p.loop_id).map(|m| m.name.as_str()).unwrap_or("?");
            println!(
                "  loop {lname}: privatize '{}' (carried WAR x{}, WAW x{})",
                w.program.interner.get(p.var).unwrap_or("?"),
                p.war,
                p.waw
            );
        }
    }
}
