//! Quickstart: profile a native Rust kernel with the `TracedVec` API.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Every `get`/`set` on the traced containers is an instrumented memory
//! access (the source line is captured automatically), the serial profiler
//! consumes the stream in-line, and the report comes out in the paper's
//! Figure 1 format — with the line numbers of *this file*.

use depprof::core::{report, SequentialProfiler};
use depprof::prelude::*;

fn main() {
    // The profiling engine doubles as the tracer.
    let handle = TracerHandle::new(SequentialProfiler::with_signature(1 << 16));

    // An instrumented kernel: a little smoothing pass over a vector.
    let mut data = TracedVec::new(&handle, "data", 64);
    let mut acc = TracedCell::new(&handle, "acc", 0);

    let init = handle.loop_begin();
    for i in 0..64 {
        handle.loop_iter(init, i);
        data.set(i as usize, i as i64 * 3);
    }
    handle.loop_end(init, 64);

    let smooth = handle.loop_begin();
    for i in 0..63 {
        handle.loop_iter(smooth, i);
        let here = data.get(i as usize);
        let next = data.get(i as usize + 1);
        data.set(i as usize, (here + next) / 2);
    }
    handle.loop_end(smooth, 63);

    // A reduction: loop-carried RAW on `acc` — the dependence that makes
    // this loop non-DOALL.
    let sum = handle.loop_begin();
    for i in 0..64 {
        handle.loop_iter(sum, i);
        acc.set(acc.get() + data.get(i as usize));
    }
    handle.loop_end(sum, 64);

    let (prof, interner) = handle.finish();
    let result = prof.finish();

    println!("== profile summary ==");
    println!("{}\n", report::summary(&result));
    println!("== dependences (Figure 1 format; locations are lines of this file) ==");
    println!("{}", report::render(&result, &interner, false));

    println!("== what a parallelism-discovery tool would see ==");
    for (d, v) in result.deps.dependences() {
        if d.edge.flags.contains(depprof::types::DepFlags::LOOP_CARRIED)
            && d.edge.dtype == DepType::Raw
        {
            println!(
                "loop-carried RAW at line {} <- line {} on '{}' ({} occurrences): blocks DOALL",
                d.sink.loc.line,
                d.edge.source_loc.line,
                interner.resolve(d.edge.var),
                v.count
            );
        }
    }
}
