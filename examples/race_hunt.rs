//! Data-race hints from timestamp reversals (Section V-B of the paper).
//!
//! ```text
//! cargo run --release --example race_hunt
//! ```
//!
//! Profiles two variants of the same program — one incrementing a shared
//! counter inside a lock region, one without any lock — with the
//! multi-threaded-target engine. For the locked variant the access/push
//! atomicity of Figure 4 guarantees in-order delivery per address, so no
//! reversal can be reported; the racy variant usually produces reversed
//! dependences, each a potential data race.

use depprof::analysis::find_races;
use depprof::prelude::*;
use depprof::trace::workloads::{synth, Scale};

fn main() {
    let cfg = || ProfilerConfig::default().with_workers(4).with_slots(1 << 18);
    for w in [synth::locked_counter(Scale(1.0), 4), synth::racy_counter(Scale(1.0), 4)] {
        println!("== {} ==", w.meta.name);
        let result = depprof::profile_mt(&w.program, cfg());
        let races = find_races(&result);
        println!(
            "  {} accesses, {} dependences, {} reversal events",
            result.stats.accesses, result.stats.deps_merged, result.stats.reversed
        );
        if races.is_empty() {
            println!("  no potential races reported\n");
        } else {
            println!("  potential data races:");
            for r in &races {
                println!(
                    "    {:?} on var #{}: line {} (thread {}) vs line {} (thread {}), seen {} times",
                    r.dtype, r.var, r.sink.0, r.sink.1, r.source.0, r.source.1, r.occurrences
                );
            }
            println!();
        }
    }
    println!(
        "note: reversal detection is evidence-based — a racy program only gets\n\
         flagged if the schedule actually interleaved during this run (the paper\n\
         makes the same observation in Section V-B)."
    );
}
