//! The case runner and the `proptest!` / `prop_assert*` macros.

use crate::TestRng;

/// Per-test configuration (subset of the real crate's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is retried.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejected (re-drawn) case with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Runs `case` until `config.cases` successes, with a fixed deterministic
/// seed schedule. Panics on the first [`TestCaseError::Fail`]; rejections
/// are retried up to a bounded total.
pub fn run_proptest(
    config: ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // One deterministic stream per test function, so cases differ across
    // tests but every run of the suite sees identical inputs.
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    for b in test_name.bytes() {
        seed = seed.rotate_left(7) ^ u64::from(b).wrapping_mul(0x100_0000_01B3);
    }
    let mut done = 0u32;
    let mut rejects = 0u64;
    let max_rejects = u64::from(config.cases) * 16 + 1024;
    while done < config.cases {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => done += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "{test_name}: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case {done} failed: {msg}")
            }
        }
    }
}

/// Declares property tests. Supported form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0u32..10, ys in prop::collection::vec(any::<u8>(), 1..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run_proptest(config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` that fails the current test case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that fails the current test case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that fails the current test case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
}

/// Rejects the current case (re-drawn with fresh inputs) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 1u32..50, v in prop::collection::vec(any::<u8>(), 1..10)) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 10);
        }

        #[test]
        fn question_mark_works(x in 0u8..10) {
            fn inner(x: u8) -> Result<(), TestCaseError> {
                prop_assert!(x < 10);
                Ok(())
            }
            inner(x)?;
        }

        #[test]
        fn assume_redraws(x in 0u8..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        for round in 0..2 {
            let mut got = Vec::new();
            crate::test_runner::run_proptest(
                ProptestConfig::with_cases(10),
                "deterministic_across_runs",
                |rng| {
                    got.push(rng.next_u64());
                    Ok(())
                },
            );
            if round == 0 {
                first = got;
            } else {
                assert_eq!(first, got);
            }
        }
    }

    #[test]
    #[should_panic(expected = "case 0 failed")]
    fn failing_case_panics() {
        crate::test_runner::run_proptest(ProptestConfig::with_cases(4), "failing", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
