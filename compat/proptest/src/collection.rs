//! Collection strategies.

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty length range");
    VecStrategy { element, size }
}
