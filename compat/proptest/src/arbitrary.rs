//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Produces one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
