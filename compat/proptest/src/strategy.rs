//! Strategies: deterministic value generators.

use crate::TestRng;

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike the real crate there is no `ValueTree`/shrinking layer: a
/// strategy produces a value directly from the test-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed strategies; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct OneOf<V> {
    choices: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Builds a weighted union; weights must not all be zero.
    pub fn new(choices: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = choices.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        OneOf { choices, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.choices {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = self.end().abs_diff(*self.start()) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(width + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Weighted union of strategies: `prop_oneof![3 => a, 2 => b]` (weights
/// optional, defaulting to 1 each).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn oneof_respects_zero_weightless_choices() {
        let mut rng = TestRng::new(3);
        let s = prop_oneof![1 => Just(1u8), 0 => Just(2u8)];
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng), 1);
        }
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::new(11);
        let s = (0u8..10).prop_map(|v| v as u32 + 100);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((100..110).contains(&v));
        }
    }
}
