//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `proptest` its property tests use:
//! the [`proptest!`] / [`prop_oneof!`] macros, [`strategy::Strategy`] with
//! `prop_map`, integer-range / tuple / [`strategy::Just`] strategies,
//! [`arbitrary::any`], [`collection::vec`], the `prop_assert*` /
//! [`prop_assume!`] macros, and [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, acceptable for these tests:
//!
//! - generation is deterministic (fixed seed, one stream per test case) —
//!   failures reproduce exactly across runs;
//! - no shrinking: a failing case reports the assertion message only;
//! - strategies implement a single `generate` method, not the full
//!   `ValueTree` machinery.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module alias so `prop::collection::vec(..)` resolves as it does
    /// with the real crate's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// A deterministic 64-bit PRNG (xorshift*), one instance per test case.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a nonzero seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`; `hi` must exceed `lo`.
    pub fn below(&mut self, width: u64) -> u64 {
        debug_assert!(width > 0);
        self.next_u64() % width
    }
}
