//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the thin slice of `parking_lot` it actually uses:
//!
//! - [`Mutex`] — a wrapper over [`std::sync::Mutex`] whose `lock()`
//!   returns the guard directly (poisoning is ignored, matching
//!   `parking_lot` semantics: a panic while holding the lock does not
//!   poison it for later users).
//! - [`RawMutex`] — a raw lock with `const INIT`, usable without wrapping
//!   data, as the MiniVM interpreter models target-program mutexes.
//! - [`lock_api::RawMutex`] — the trait providing `INIT`/`lock`/`unlock`.
//!
//! Performance characteristics differ from the real crate (the raw mutex
//! spins with `yield_now` instead of futex parking), which is acceptable
//! for the short critical sections the MiniVM workloads model.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

/// Re-exported trait layer, mirroring `parking_lot::lock_api`.
pub mod lock_api {
    /// A raw mutex: lockable from `&self`, with a `const` initializer.
    ///
    /// Subset of `lock_api::RawMutex` (no fairness, no timeouts).
    pub trait RawMutex {
        /// An unlocked mutex, usable in `const` contexts.
        const INIT: Self;

        /// Acquires the lock, blocking (spinning) until available.
        fn lock(&self);

        /// Attempts to acquire the lock without blocking.
        fn try_lock(&self) -> bool;

        /// Releases the lock.
        ///
        /// # Safety
        ///
        /// The lock must be held by the current context.
        unsafe fn unlock(&self);
    }
}

/// A raw test-and-test-and-set spin lock with a `const` initializer.
///
/// Stands in for `parking_lot::RawMutex`; the MiniVM interpreter uses one
/// per modeled target-program mutex.
pub struct RawMutex {
    locked: AtomicBool,
}

impl lock_api::RawMutex for RawMutex {
    const INIT: RawMutex = RawMutex { locked: AtomicBool::new(false) };

    fn lock(&self) {
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            while self.locked.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
        }
    }

    fn try_lock(&self) -> bool {
        self.locked.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_ok()
    }

    unsafe fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive whose `lock()` returns the guard directly.
///
/// Wraps [`std::sync::Mutex`]; a poisoned lock (panic in another holder)
/// is entered anyway, matching `parking_lot`'s no-poisoning behaviour.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::lock_api::RawMutex as _;
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn raw_mutex_excludes() {
        let m = Arc::new(RawMutex::INIT);
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.lock();
                    *counter.lock() += 1;
                    unsafe { m.unlock() };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 4000);
    }

    #[test]
    fn try_lock_contended() {
        let m = RawMutex::INIT;
        assert!(m.try_lock());
        assert!(!m.try_lock());
        unsafe { m.unlock() };
        assert!(m.try_lock());
    }
}
