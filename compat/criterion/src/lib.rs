//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `criterion` its benchmarks use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `throughput`/`sample_size`/`measurement_time`/`warm_up_time`/
//! `bench_function`/`finish`, [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark is warmed up, then
//! sampled `sample_size` times; the reported figure is the *median*
//! sample (robust to scheduler noise), with min/max alongside. There are
//! no plots, baselines, or outlier analysis.

#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export of
/// [`std::hint::black_box`]).
pub fn black_box<T>(v: T) -> T {
    std_black_box(v)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// How to express per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, rendered as `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing throughput and timing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Warm-up: run until the budget is spent, learning the iteration
        // cost as we go.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warm_start.elapsed() < self.warm_up_time {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter = (b.elapsed / b.iters as u32).max(Duration::from_nanos(1));
        }

        // Measurement: split the budget into sample_size samples and size
        // each sample's iteration count to fill its share.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters =
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u128::from(u32::MAX));
        b.iters = iters as u64;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed / b.iters as u32);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  {:>12.0} elem/s", per_sec)
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  {:>12.0} B/s", per_sec)
            }
            None => String::new(),
        };
        println!(
            "  {:<40} median {:>12?}  (min {:?}, max {:?}, {} iters/sample){rate}",
            id.id, median, min, max, b.iters
        );
        self
    }

    /// Ends the group (printing nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of times.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group (command-line arguments are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_group(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(30));
        g.warm_up_time(Duration::from_millis(5));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_function(BenchmarkId::new("add", "id-form"), |b| b.iter(|| 1u64 + 1));
        g.finish();
    }

    criterion_group!(benches, quick_group);

    #[test]
    fn harness_runs() {
        benches();
    }
}
