//! Multi-threaded-target profiling (Section V): thread-aware records,
//! lock-region ordering guarantees, race hints, communication patterns.

use depprof::analysis::{communication_matrix, find_races};
use depprof::prelude::*;
use depprof::trace::workloads::{splash, starbench_parallel_suite, synth, Scale};

fn cfg(workers: usize) -> ProfilerConfig {
    ProfilerConfig::default().with_workers(workers).with_slots(1 << 18)
}

#[test]
fn locked_counter_never_reports_races() {
    // The lock-region flush (Figure 4) makes per-address delivery ordered,
    // so a correctly locked program must be reversal-free — run it several
    // times to make the guarantee credible on a noisy scheduler.
    for _ in 0..3 {
        let w = synth::locked_counter(Scale(0.2), 4);
        let r = depprof::profile_mt(&w.program, cfg(4));
        assert_eq!(r.stats.reversed, 0, "locked program flagged reversals");
        assert!(find_races(&r).is_empty());
    }
}

#[test]
fn mt_records_carry_thread_ids() {
    let w = starbench_parallel_suite(Scale(0.05), 4).remove(6); // rot-cc
    let r = depprof::profile_mt(&w.program, cfg(4));
    let mut threads: Vec<u16> =
        r.deps.dependences().flat_map(|(d, _)| [d.sink.thread, d.edge.source_thread]).collect();
    threads.sort_unstable();
    threads.dedup();
    assert!(threads.len() >= 4, "expected records from several target threads: {threads:?}");
    // Figure 3 format renders thread ids.
    let text = depprof::core::report::render(&r, &w.program.interner, true);
    assert!(text.contains("|1 NOM") || text.contains("|2 NOM"), "{}", &text[..text.len().min(500)]);
}

#[test]
fn locked_shared_scalar_produces_cross_thread_deps() {
    let w = starbench_parallel_suite(Scale(0.05), 4).remove(8); // tinyjpeg: shared locked sink
    let r = depprof::profile_mt(&w.program, cfg(4));
    let cross = r
        .deps
        .dependences()
        .filter(|(d, _)| d.edge.dtype == DepType::Raw && d.sink.thread != d.edge.source_thread)
        .count();
    assert!(cross > 0, "no cross-thread RAW observed on the locked accumulator");
}

#[test]
fn water_spatial_matrix_is_neighbour_banded() {
    let n = 6u32;
    let w = splash::water_spatial(Scale(0.1), n);
    let r = depprof::profile_mt(&w.program, cfg(8));
    let m = communication_matrix(&r, n as usize + 1);
    // Workers are tids 1..=n arranged in a ring; every worker must
    // communicate with its ring neighbours and the neighbour volume must
    // dominate non-neighbour worker-to-worker traffic.
    let mut neighbour = 0u64;
    let mut far = 0u64;
    for p in 1..=n as u16 {
        for c in 1..=n as u16 {
            if p == c {
                continue;
            }
            let rp = (p - 1) as i64;
            let rc = (c - 1) as i64;
            let ring_dist = ((rp - rc).rem_euclid(n as i64)).min((rc - rp).rem_euclid(n as i64));
            if ring_dist == 1 {
                neighbour += m.get(p, c);
            } else {
                far += m.get(p, c);
            }
        }
    }
    assert!(neighbour > 0, "no neighbour communication found");
    assert!(
        neighbour > far * 3,
        "banding not dominant: neighbour={neighbour} far={far}\n{}",
        m.render_ascii()
    );
}

#[test]
fn mt_profile_counts_all_accesses() {
    use depprof::trace::{CollectFactory, Interp};
    let w = splash::water_spatial(Scale(0.05), 4);
    // Count ground-truth events once.
    let vm = Interp::new(&w.program);
    let fac = CollectFactory::default();
    vm.run_mt(&fac);
    let expected = fac.events.lock().iter().filter(|e| e.as_access().is_some()).count() as u64;
    let r = depprof::profile_mt(&w.program, cfg(8));
    assert_eq!(r.stats.accesses, expected);
}

#[test]
fn shadow_store_mt_engine_works_too() {
    use depprof::core::MtProfiler;
    use depprof::sig::ShadowMemory;
    use depprof::trace::Interp;
    let w = synth::locked_counter(Scale(0.05), 2);
    let vm = Interp::new(&w.program);
    let prof = MtProfiler::with_store_factory(cfg(2), ShadowMemory::new);
    vm.run_mt(&prof);
    let r = prof.finish();
    assert!(r.stats.deps_merged > 0);
    assert!(r.memory.signatures > 0);
}

#[test]
fn water_spatial_is_race_free() {
    // All of water-spatial's sharing is ordered by fork, barriers and a
    // lock — the profiler must not flag any of it.
    let w = splash::water_spatial(Scale(0.05), 4);
    let r = depprof::profile_mt(&w.program, cfg(4));
    assert_eq!(r.stats.reversed, 0);
    assert!(find_races(&r).is_empty());
}
