//! End-to-end durability tests for the checkpoint/resume subsystem.
//!
//! The property at the heart of this file is the recovery guarantee:
//! *kill the run after any record, resume from the last checkpoint, and
//! the final profile is identical to an uninterrupted run* — for the
//! serial engine and for all three parallel transports. The CLI tests
//! then prove the same thing across a real process boundary (SIGABRT
//! mid-run, fresh process resumes from disk), including the
//! torn-checkpoint case where the newest generation was half-written.

use depprof::core::{
    AnyParallelProfiler, ProfileResult, ProfilerConfig, SequentialProfiler, TransportKind,
};
use depprof::sig::{ExtendedSlot, Signature};
use depprof::types::{loc::loc, AccessKind, MemAccess, TraceEvent, Tracer};
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;

// ---------------------------------------------------------------------
// In-process property: checkpoint at ANY index, resume, same profile.
// ---------------------------------------------------------------------

/// A well-formed stream mixing reads, writes, a loop and deallocations
/// over a bounded address set — enough to exercise the signatures, the
/// dependence store, the execution tree and the loop tracker that a
/// checkpoint has to carry.
fn arb_stream() -> impl Strategy<Value = Vec<TraceEvent>> {
    let step = prop_oneof![
        12 => (0u64..24, any::<bool>(), 1u32..40).prop_map(|(slot, w, line)| (0u8, slot, w, line)),
        1 => (0u64..4, any::<bool>(), 1u32..40).prop_map(|(slot, _, _)| (1u8, slot, false, 0)),
    ];
    prop::collection::vec(step, 2..120).prop_map(|steps| {
        let mut ts = 0u64;
        let mut evs = vec![TraceEvent::LoopBegin { loop_id: 7, loc: loc(1, 1), thread: 0, ts }];
        for (i, (kind, slot, is_write, line)) in steps.into_iter().enumerate() {
            ts += 1;
            if i % 8 == 0 {
                evs.push(TraceEvent::LoopIter { loop_id: 7, iter: (i / 8) as u64, thread: 0, ts });
                ts += 1;
            }
            match kind {
                0 => evs.push(TraceEvent::Access(MemAccess {
                    addr: 0x2000 + slot * 8,
                    ts,
                    loc: loc(1, line),
                    var: 1,
                    thread: 0,
                    kind: if is_write { AccessKind::Write } else { AccessKind::Read },
                })),
                _ => evs.push(TraceEvent::Dealloc {
                    base: 0x2000 + slot * 8 * 4,
                    len: 32,
                    thread: 0,
                    ts,
                }),
            }
        }
        evs.push(TraceEvent::LoopEnd { loop_id: 7, loc: loc(1, 2), iters: 1, thread: 0, ts });
        evs
    })
}

/// Stream plus a kill index somewhere strictly inside it. (The vendored
/// proptest subset has no `prop_flat_map`, so the index is drawn as a
/// raw value and reduced modulo the stream length.)
fn arb_stream_and_cut() -> impl Strategy<Value = (Vec<TraceEvent>, usize)> {
    (arb_stream(), 0u64..1_000_000).prop_map(|(evs, raw)| {
        let cut = 1 + (raw as usize) % (evs.len() - 1);
        (evs, cut)
    })
}

fn deps_fingerprint(r: &ProfileResult) -> Vec<String> {
    let mut v: Vec<String> =
        r.deps.dependences().map(|(d, val)| format!("{d:?}={val:?}")).collect();
    v.sort();
    v
}

fn par_cfg(kind: TransportKind) -> ProfilerConfig {
    ProfilerConfig::default()
        .with_workers(3)
        .with_slots(3 << 12)
        .with_chunk_capacity(8)
        .with_transport(kind)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel pipeline, all three transports: a checkpoint taken after
    /// any record, restored into a fresh engine that then consumes the
    /// rest of the stream, yields the exact profile of an uninterrupted
    /// run — dependences, counts and loop records included.
    #[test]
    fn parallel_kill_anywhere_resume_is_lossless((evs, cut) in arb_stream_and_cut()) {
        for kind in [TransportKind::Spsc, TransportKind::Mpmc, TransportKind::Lock] {
            let c = par_cfg(kind);
            let slots = c.slots_per_worker();
            let mk = move || Signature::<ExtendedSlot>::new(slots);

            let mut reference: AnyParallelProfiler<Signature<ExtendedSlot>> =
                AnyParallelProfiler::new(c.clone(), mk);
            for ev in &evs {
                reference.event(*ev);
            }
            let r_ref = reference.finish();
            prop_assert!(!r_ref.degraded());

            let mut first: AnyParallelProfiler<Signature<ExtendedSlot>> =
                AnyParallelProfiler::new(c.clone(), mk);
            for ev in &evs[..cut] {
                first.event(*ev);
            }
            let data = first.checkpoint_data(1, cut as u64, Vec::new()).unwrap();
            drop(first.finish()); // the "killed" engine dies here

            let mut resumed = AnyParallelProfiler::resume(c, mk, &data).unwrap();
            for ev in &evs[cut..] {
                resumed.event(*ev);
            }
            let r2 = resumed.finish();
            prop_assert!(!r2.degraded());
            prop_assert_eq!(r_ref.stats.accesses, r2.stats.accesses, "{:?} cut={}", kind, cut);
            prop_assert_eq!(
                deps_fingerprint(&r_ref),
                deps_fingerprint(&r2),
                "{:?} cut={}",
                kind,
                cut
            );
            prop_assert_eq!(r_ref.deps.loop_record(7), r2.deps.loop_record(7));
        }
    }

    /// The serial in-line engine honours the same property.
    #[test]
    fn serial_kill_anywhere_resume_is_lossless((evs, cut) in arb_stream_and_cut()) {
        let mut reference = SequentialProfiler::with_signature(1 << 12);
        for ev in &evs {
            reference.on_event(ev);
        }
        let r_ref = reference.finish();

        let mut first = SequentialProfiler::with_signature(1 << 12);
        for ev in &evs[..cut] {
            first.on_event(ev);
        }
        let data = first.checkpoint_data(1, cut as u64, Vec::new()).unwrap();
        drop(first);

        let mut resumed = SequentialProfiler::with_signature(1 << 12);
        resumed.restore(&data).unwrap();
        for ev in &evs[cut..] {
            resumed.on_event(ev);
        }
        let r2 = resumed.finish();
        prop_assert_eq!(r_ref.stats.accesses, r2.stats.accesses);
        prop_assert_eq!(deps_fingerprint(&r_ref), deps_fingerprint(&r2), "cut={}", cut);
        prop_assert_eq!(r_ref.deps.loop_record(7), r2.deps.loop_record(7));
    }
}

// ---------------------------------------------------------------------
// CLI-level recovery: a real process killed mid-run, resumed from disk.
// ---------------------------------------------------------------------

fn depprof(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_depprof")).args(args).output().expect("spawn depprof")
}

/// Fresh scratch directory per test so parallel test binaries never race.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("depprof-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn record_trace(dir: &std::path::Path) -> String {
    let trace = dir.join("is.dptr");
    let trace_s = trace.to_str().unwrap().to_string();
    let rec = depprof(&["record", "IS", "--scale", "0.05", "--out", &trace_s]);
    assert!(rec.status.success(), "{}", String::from_utf8_lossy(&rec.stderr));
    trace_s
}

/// Kill the process (abort, no unwinding — an honest SIGKILL stand-in)
/// after a checkpoint was written, resume in a NEW process, and require
/// stdout to be byte-identical to an uninterrupted replay.
#[test]
fn cli_kill_and_resume_produces_identical_report() {
    let dir = scratch("kill");
    let trace = record_trace(&dir);
    let ckpt = dir.join("run.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();

    let clean = depprof(&[
        "replay",
        &trace,
        "--engine",
        "parallel",
        "--workers",
        "3",
        "--no-redistribution",
    ]);
    assert!(clean.status.success(), "{}", String::from_utf8_lossy(&clean.stderr));

    let killed = depprof(&[
        "replay",
        &trace,
        "--engine",
        "parallel",
        "--workers",
        "3",
        "--no-redistribution",
        "--checkpoint-every",
        "2000",
        "--checkpoint-dir",
        ckpt_s,
        "--inject-kill-after",
        "5000",
    ]);
    assert!(!killed.status.success(), "the injected kill must abort the process");
    assert!(ckpt.join("checkpoint-0.dpck").exists() || ckpt.join("checkpoint-1.dpck").exists());

    let resumed = depprof(&["replay", "--resume", ckpt_s]);
    assert!(resumed.status.success(), "{}", String::from_utf8_lossy(&resumed.stderr));
    assert_eq!(
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "resumed profile must match the uninterrupted run"
    );
    let err = String::from_utf8_lossy(&resumed.stderr);
    assert!(err.contains("resuming from checkpoint"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tearing the newest generation (simulated crash mid-checkpoint-write
/// at the filesystem level) must fall back to the previous valid
/// generation — losing at most one checkpoint interval of progress, and
/// still converging to the identical final profile.
#[test]
fn cli_torn_checkpoint_falls_back_one_generation() {
    let dir = scratch("torn");
    let trace = record_trace(&dir);
    let ckpt = dir.join("run.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();

    let clean = depprof(&["replay", &trace]);
    assert!(clean.status.success());

    let killed = depprof(&[
        "replay",
        &trace,
        "--checkpoint-every",
        "2000",
        "--checkpoint-dir",
        ckpt_s,
        "--inject-kill-after",
        "5000",
    ]);
    assert!(!killed.status.success());

    // Two generations must exist; tear the newer one in half.
    let g0 = ckpt.join("checkpoint-0.dpck");
    let g1 = ckpt.join("checkpoint-1.dpck");
    assert!(g0.exists() && g1.exists(), "expected both generations after 2 checkpoints");
    let torn = std::fs::read(&g1).unwrap();
    std::fs::write(&g1, &torn[..torn.len() / 2]).unwrap();

    let resumed = depprof(&["replay", "--resume", ckpt_s]);
    assert!(resumed.status.success(), "{}", String::from_utf8_lossy(&resumed.stderr));
    let err = String::from_utf8_lossy(&resumed.stderr);
    // Generation 1 is torn, so the resume point must be generation 0 —
    // exactly one checkpoint interval (2000 records) behind the tear.
    assert!(err.contains("resuming from checkpoint generation 0 at record 2000"), "{err}");
    assert_eq!(String::from_utf8_lossy(&clean.stdout), String::from_utf8_lossy(&resumed.stdout));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Both generations torn → a clean, classified failure (exit 4), not a
/// crash or a silently empty profile.
#[test]
fn cli_all_generations_torn_is_a_classified_error() {
    let dir = scratch("dead");
    let trace = record_trace(&dir);
    let ckpt = dir.join("run.ckpt");
    let ckpt_s = ckpt.to_str().unwrap();

    let killed = depprof(&[
        "replay",
        &trace,
        "--checkpoint-every",
        "2000",
        "--checkpoint-dir",
        ckpt_s,
        "--inject-kill-after",
        "5000",
    ]);
    assert!(!killed.status.success());
    for g in ["checkpoint-0.dpck", "checkpoint-1.dpck"] {
        let p = ckpt.join(g);
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 3]).unwrap();
    }
    let resumed = depprof(&["replay", "--resume", ckpt_s]);
    assert_eq!(resumed.status.code(), Some(4), "corrupt checkpoints must exit 4");
    assert!(String::from_utf8_lossy(&resumed.stderr).contains("cannot resume"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stalled worker starves the pipeline; the watchdog gives up with the
/// documented exit code 6 instead of hanging forever.
#[test]
fn cli_watchdog_exits_with_code_6_on_stall() {
    let dir = scratch("wd");
    // kmeans at this scale pushes well past the stalled worker's second
    // chunk, so the periodic checkpoint quiesces against a worker that
    // will never reply and waits out the 2 s drain deadline — a hard
    // no-progress window the 150 ms watchdog must fire inside. The huge
    // stall deadline keeps the per-worker supervision from recovering
    // the worker first: this test is about the watchdog backstop.
    let trace = dir.join("km.dptr");
    let trace_s = trace.to_str().unwrap().to_string();
    let rec = depprof(&["record", "kmeans", "--scale", "0.05", "--out", &trace_s]);
    assert!(rec.status.success(), "{}", String::from_utf8_lossy(&rec.stderr));
    let out = depprof(&[
        "replay",
        &trace_s,
        "--engine",
        "parallel",
        "--workers",
        "2",
        "--inject-stall",
        "0@2",
        "--stall-deadline",
        "600000",
        "--checkpoint-every",
        "5000",
        "--watchdog-deadline",
        "150",
    ]);
    assert_eq!(out.status.code(), Some(6), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("watchdog"));
    let _ = std::fs::remove_dir_all(&dir);
}
