//! End-to-end checks of the paper's headline claims on the miniature
//! workloads (scaled; see DESIGN.md for the fidelity argument).

use depprof::analysis::{classify_loops, compare, LoopMeta};
use depprof::core::SequentialProfiler;
use depprof::prelude::*;
use depprof::sig::{predicted_fpr, ExtendedSlot, Signature};
use depprof::trace::workloads::{nas_suite, starbench_suite, synth, Scale};
use depprof::trace::{CollectTracer, Interp};
use depprof::types::TraceEvent;

fn record(program: &depprof::trace::Program) -> Vec<TraceEvent> {
    let vm = Interp::new(program);
    let mut t = CollectTracer::new();
    vm.run_seq(&mut t);
    t.events
}

fn replay<S: depprof::sig::AccessStore>(
    evs: &[TraceEvent],
    mut p: SequentialProfiler<S>,
) -> depprof::core::ProfileResult {
    for e in evs {
        p.on_event(e);
    }
    p.finish()
}

/// Table II, fully: per-program OMP/identified counts match the paper.
#[test]
fn table2_reproduces_exactly() {
    let expected = [
        ("BT", 30, 30),
        ("SP", 34, 34),
        ("LU", 33, 33),
        ("IS", 11, 8),
        ("EP", 1, 1),
        ("CG", 16, 9),
        ("MG", 14, 14),
        ("FT", 8, 7),
    ];
    for (w, (name, omp, ident)) in nas_suite(Scale(0.05)).iter().zip(expected) {
        assert_eq!(w.meta.name, name);
        let evs = record(&w.program);
        let metas: Vec<LoopMeta> = w
            .program
            .loops
            .iter()
            .map(|l| LoopMeta { id: l.id, name: l.name.clone(), omp: l.omp })
            .collect();
        for engine in ["perfect", "signature"] {
            let r = match engine {
                "perfect" => replay(&evs, SequentialProfiler::perfect()),
                _ => replay(&evs, SequentialProfiler::with_signature(1 << 20)),
            };
            let v = classify_loops(&r, &metas);
            let got_omp = v.iter().filter(|x| x.meta.omp).count();
            let got_id = v.iter().filter(|x| x.meta.omp && x.identified()).count();
            assert_eq!((got_omp, got_id), (omp, ident), "{name} via {engine}");
        }
    }
}

/// Table I shape: FPR and FNR shrink monotonically (weakly) as the
/// signature grows, and are negligible at the largest size.
#[test]
fn accuracy_improves_with_signature_size() {
    for w in &starbench_suite(Scale(0.05))[..4] {
        let evs = record(&w.program);
        let base = replay(&evs, SequentialProfiler::perfect());
        let mut last_fpr = f64::INFINITY;
        for m in [512usize, 8 * 1024, 256 * 1024] {
            let sig = replay(
                &evs,
                SequentialProfiler::with_stores(
                    Signature::<ExtendedSlot>::new(m),
                    Signature::<ExtendedSlot>::new(m),
                ),
            );
            let acc = compare(&base, &sig);
            assert!(
                acc.fpr() <= last_fpr + 1.0,
                "{}: FPR grew substantially with more slots ({} -> {})",
                w.meta.name,
                last_fpr,
                acc.fpr()
            );
            last_fpr = acc.fpr();
        }
        assert!(last_fpr < 2.0, "{}: residual FPR {last_fpr}", w.meta.name);
    }
}

/// Formula 2 is a sound predictor: measured FPR tracks the predicted
/// slot-occupancy probability's ordering across sizes.
#[test]
fn formula2_ordering_holds() {
    let n = 4_000u64;
    let w = synth::uniform(n, n * 10);
    let evs = record(&w.program);
    let base = replay(&evs, SequentialProfiler::perfect());
    let mut rows = Vec::new();
    for m in [n as usize / 4, n as usize, n as usize * 8] {
        let sig = replay(
            &evs,
            SequentialProfiler::with_stores(
                Signature::<ExtendedSlot>::new(m),
                Signature::<ExtendedSlot>::new(m),
            ),
        );
        rows.push((predicted_fpr(m, n), compare(&base, &sig).fpr()));
    }
    assert!(rows[0].0 > rows[1].0 && rows[1].0 > rows[2].0);
    assert!(
        rows[0].1 >= rows[1].1 && rows[1].1 >= rows[2].1,
        "measured FPRs not monotone: {rows:?}"
    );
}

/// Merging identical dependences shrinks output by orders of magnitude
/// (Section III-B's 10⁵× at full scale; >10² even at mini scale).
#[test]
fn merge_factor_is_large() {
    for w in &nas_suite(Scale(0.1)) {
        let r = depprof::profile_sequential(&w.program, 1 << 18);
        assert!(
            r.merge_factor() > 50.0,
            "{}: merge factor only {:.1}",
            w.meta.name,
            r.merge_factor()
        );
    }
}

/// Variable-lifetime analysis: address reuse after free must not
/// fabricate dependences (Section III-B).
#[test]
fn lifetime_analysis_prevents_false_raw() {
    let w = synth::lifetime_reuse(256);
    let r = depprof::profile_sequential(&w.program, 1 << 16);
    // gen1's reads must not be RAW-linked to gen0's writes: the only RAW
    // on the sink side of read_gen1 may come from the scalar accumulator.
    let gen1_read_line = w
        .program
        .loops
        .iter()
        .find(|l| l.name == "read_gen1")
        .map(|l| (l.begin.line, l.end.line))
        .unwrap();
    for (d, _) in r.deps.dependences() {
        if d.edge.dtype == DepType::Raw
            && d.sink.loc.line > gen1_read_line.0
            && d.sink.loc.line < gen1_read_line.1
        {
            let var = w.program.interner.resolve(d.edge.var);
            assert_ne!(var, "gen1", "false RAW across free/realloc: {d:?}");
        }
    }
    assert!(r.stats.lifetime_removals >= 256);
}

/// The profiler reports detailed records: source locations, variable
/// names, thread ids — Figure 1 / Figure 3 structure.
#[test]
fn report_structure_matches_figures() {
    let w = &nas_suite(Scale(0.03))[4]; // EP: small
    let r = depprof::profile_sequential(&w.program, 1 << 18);
    let text = depprof::core::report::render(&r, &w.program.interner, false);
    assert!(text.contains("BGN loop"));
    assert!(text.contains("END loop"));
    assert!(text.contains("NOM"));
    assert!(text.contains("{RAW "));
    assert!(text.contains("{INIT *}"));
    // every NOM line names a variable after the '|'
    for line in text.lines().filter(|l| l.contains("{RAW")) {
        assert!(line.contains('|'), "{line}");
    }
}

/// Sanity on the signature-memory claim: 10⁸ compact slots ≈ 382 MB
/// (Section VI-A).
#[test]
fn paper_memory_arithmetic() {
    use depprof::sig::{AccessStore, CompactSlot};
    let s = Signature::<CompactSlot>::new(1_000_000); // 10⁶ slots at 4 B
    let m = s.memory_usage();
    assert!((4_000_000..4_100_000).contains(&m));
    // Extrapolated to the paper's 10⁸ slots: 400 MB ≈ 381–382 MiB
    // ("1.0E+8 slots consume only 382 MB", Section VI-A).
    let mib = (m as u64 * 100) / (1024 * 1024);
    assert!((381..=382).contains(&mib), "{mib}");
}
