//! End-to-end tests of `depprof serve` / `depprof push` across real
//! process boundaries: a served report is byte-identical to an offline
//! replay, and a SIGTERM'd server resumes its sessions from checkpoint.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn depprof(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_depprof")).args(args).output().expect("spawn depprof")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("depprof-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Starts `depprof serve --listen 127.0.0.1:0 ...` and waits for the
/// "serving DPSV on <addr>" banner to learn the ephemeral port.
/// Every caller SIGTERMs and `wait()`s the returned child.
#[allow(clippy::zombie_processes)]
fn start_serve(dir: &Path, extra: &[&str]) -> (Child, String) {
    let log = dir.join(format!("serve-{}.log", std::process::id()));
    let mut child = Command::new(env!("CARGO_BIN_EXE_depprof"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(extra)
        .stderr(Stdio::from(std::fs::File::create(&log).unwrap()))
        .spawn()
        .expect("spawn serve");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let text = std::fs::read_to_string(&log).unwrap_or_default();
        if let Some(line) = text.lines().find(|l| l.contains("serving DPSV on ")) {
            let addr = line.rsplit(' ').next().unwrap().to_string();
            return (child, addr);
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("serve never printed its address:\n{text}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn sigterm(child: &Child) {
    let _ = Command::new("kill").args(["-TERM", &child.id().to_string()]).status();
}

#[test]
fn served_report_is_byte_identical_to_replay() {
    let dir = tmpdir("identical");
    let trace = dir.join("is.dptr");
    let trace_s = trace.to_str().unwrap();
    let rec = depprof(&["record", "IS", "--scale", "0.05", "--out", trace_s]);
    assert!(rec.status.success(), "{}", String::from_utf8_lossy(&rec.stderr));

    let offline = dir.join("offline.txt");
    let rep = depprof(&["replay", trace_s, "--report-out", offline.to_str().unwrap()]);
    assert!(rep.status.success(), "{}", String::from_utf8_lossy(&rep.stderr));

    let (mut serve, addr) = start_serve(&dir, &[]);
    let served = dir.join("served.txt");
    let push = depprof(&[
        "push",
        trace_s,
        "--connect",
        &addr,
        "--session",
        "e2e",
        "--report-out",
        served.to_str().unwrap(),
    ]);
    assert!(push.status.success(), "{}", String::from_utf8_lossy(&push.stderr));
    assert_eq!(
        std::fs::read(&offline).unwrap(),
        std::fs::read(&served).unwrap(),
        "served report differs from offline replay"
    );

    sigterm(&serve);
    let status = serve.wait().unwrap();
    assert_eq!(status.code(), Some(7), "serve must exit with the documented signal code");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_mid_session_then_checkpointed_resume() {
    let dir = tmpdir("resume");
    let trace = dir.join("cg.dptr");
    let trace_s = trace.to_str().unwrap();
    let rec = depprof(&["record", "CG", "--scale", "0.2", "--out", trace_s]);
    assert!(rec.status.success(), "{}", String::from_utf8_lossy(&rec.stderr));

    let offline = dir.join("offline.txt");
    let rep = depprof(&["replay", trace_s, "--report-out", offline.to_str().unwrap()]);
    assert!(rep.status.success());

    let ckpt = dir.join("ckpts");
    let ckpt_s = ckpt.to_str().unwrap();
    let (mut serve, addr) =
        start_serve(&dir, &["--checkpoint-dir", ckpt_s, "--checkpoint-every", "500"]);

    // A throttled push gives the server time to checkpoint; the server
    // is SIGTERM'd mid-session, so this push must fail.
    let mut push = Command::new(env!("CARGO_BIN_EXE_depprof"))
        .args([
            "push",
            trace_s,
            "--connect",
            &addr,
            "--session",
            "cg",
            "--chunk-events",
            "128",
            "--throttle-ms",
            "4",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Wait until at least one checkpoint generation exists on disk.
    let deadline = Instant::now() + Duration::from_secs(30);
    let session_dir = ckpt.join("cg");
    loop {
        let has_ckpt = std::fs::read_dir(&session_dir).map(|d| d.count() > 0).unwrap_or(false);
        if has_ckpt {
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint appeared in {session_dir:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    sigterm(&serve);
    let status = serve.wait().unwrap();
    assert_eq!(status.code(), Some(7));
    assert!(!push.wait().unwrap().success(), "interrupted push must not report success");

    // Restart the server over the same checkpoint base: the re-pushed
    // session resumes (the client is told to skip a non-zero prefix)
    // and the final report is still byte-identical.
    let (mut serve2, addr2) = start_serve(&dir, &["--checkpoint-dir", ckpt_s]);
    let served = dir.join("resumed.txt");
    let push2 = depprof(&[
        "push",
        trace_s,
        "--connect",
        &addr2,
        "--session",
        "cg",
        "--report-out",
        served.to_str().unwrap(),
    ]);
    assert!(push2.status.success(), "{}", String::from_utf8_lossy(&push2.stderr));
    let stderr = String::from_utf8_lossy(&push2.stderr);
    assert!(stderr.contains("resumed session 'cg' from event "), "no resume banner:\n{stderr}");
    assert_eq!(
        std::fs::read(&offline).unwrap(),
        std::fs::read(&served).unwrap(),
        "resumed report differs from offline replay"
    );
    // A finished session clears its checkpoints — nothing to resume.
    assert!(
        !session_dir.exists() || std::fs::read_dir(&session_dir).unwrap().count() == 0,
        "finished session left checkpoints behind"
    );

    sigterm(&serve2);
    assert_eq!(serve2.wait().unwrap().code(), Some(7));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_sigint_writes_emergency_checkpoint_and_exits_7() {
    let dir = tmpdir("replay-signal");
    let trace = dir.join("ep.dptr");
    let trace_s = trace.to_str().unwrap();
    let rec = depprof(&["record", "EP", "--scale", "0.4", "--out", trace_s]);
    assert!(rec.status.success(), "{}", String::from_utf8_lossy(&rec.stderr));

    let ckpt = dir.join("ck");
    let replay = Command::new(env!("CARGO_BIN_EXE_depprof"))
        .args([
            "replay",
            trace_s,
            "--checkpoint-every",
            "1000000000", // periodic checkpoints effectively off: the signal writes it
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // Give the replay a moment to get into its feed loop, then SIGINT.
    std::thread::sleep(Duration::from_millis(150));
    let _ = Command::new("kill").args(["-INT", &replay.id().to_string()]).status();
    let out = replay.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    if out.status.code() == Some(0) {
        // The replay can legitimately finish before the signal lands on
        // a fast machine; only a *signalled* run owes the contract.
        return;
    }
    assert_eq!(out.status.code(), Some(7), "stderr:\n{stderr}");
    assert!(stderr.contains("emergency checkpoint"), "stderr:\n{stderr}");
    let resumed = depprof(&["replay", "--resume", ckpt.to_str().unwrap()]);
    assert!(resumed.status.success(), "{}", String::from_utf8_lossy(&resumed.stderr));
    let _ = std::fs::remove_dir_all(&dir);
}
