//! Property-based proof of the pipeline's event-conservation law.
//!
//! Every event the router accepts is accounted for exactly once in the
//! metrics snapshot:
//!
//! ```text
//! pushed == consumed + dropped + rerouted + in_flight_at_shutdown
//! ```
//!
//! The suite drives random event streams through every transport kind
//! (SPSC fast path, lock-free MPMC, lock-based comparator) under random
//! fault plans — inert, worker panic, worker stall under the `drop`
//! overflow policy — plus a chaos sweep over a transport that injects
//! seeded spurious send/receive failures. In every case the ledger must
//! balance and the metrics-side drop count must agree exactly with the
//! engine's own `dropped_events` statistic.
//!
//! The assertions are live when the `metrics` feature (default) is on;
//! with metrics compiled out the snapshot is all-zero and the suite
//! degenerates to a crash test of the same fault matrix.

use depprof::core::parallel::{AnyParallelProfiler, ParallelProfiler};
use depprof::core::{
    FaultPlan, MetricsSnapshot, OverflowPolicy, ProfileResult, ProfilerConfig, TransportKind,
};
use depprof::queue::{FailingTransport, SpscTransport};
use depprof::sig::PerfectSignature;
use depprof::types::{loc::loc, AccessKind, MemAccess, TraceEvent, Tracer};
use proptest::prelude::*;

/// What the generated fault plan does, so the config can be shaped to
/// terminate quickly (stalls need the `drop` overflow policy and tight
/// deadlines; panics drain fine under the default `block`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum PlanKind {
    Inert,
    Panic { worker: usize, after_chunks: u64 },
    Stall { worker: usize, after_chunks: u64 },
}

fn arb_plan() -> impl Strategy<Value = PlanKind> {
    prop_oneof![
        4 => Just(PlanKind::Inert),
        3 => (0usize..4, 0u64..4)
            .prop_map(|(worker, after_chunks)| PlanKind::Panic { worker, after_chunks }),
        1 => (0usize..4, 0u64..3)
            .prop_map(|(worker, after_chunks)| PlanKind::Stall { worker, after_chunks }),
    ]
}

/// Random well-formed access stream: monotone timestamps over a bounded
/// address set so every worker's residue class gets traffic.
fn arb_stream() -> impl Strategy<Value = Vec<TraceEvent>> {
    prop::collection::vec((0u64..96, any::<bool>(), 1u32..60), 1..500).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(slot, is_write, line)| {
                ts += 1;
                TraceEvent::Access(MemAccess {
                    addr: 0x1000 + slot * 8,
                    ts,
                    loc: loc(1, line),
                    var: 1,
                    thread: 0,
                    kind: if is_write { AccessKind::Write } else { AccessKind::Read },
                })
            })
            .collect()
    })
}

/// The two counter invariants every run must satisfy, whatever the fault
/// plan did: the conservation ledger balances, and the metrics-side drop
/// count equals the engine's own loss statistic (both count the same
/// events — in the tested matrix no dropped chunk ever carries rerouted
/// marks, because diversion only happens *away* from dead workers and
/// survivors' chunks are delivered, not dropped).
fn assert_conserved(r: &ProfileResult, ctx: &str) -> Result<(), TestCaseError> {
    let m: &MetricsSnapshot = &r.metrics;
    if !m.enabled {
        return Ok(()); // metrics feature off: nothing to prove
    }
    prop_assert!(m.conservation.holds(), "{ctx}: conservation violated: {:?}", m.conservation);
    prop_assert_eq!(
        m.conservation.dropped,
        r.stats.dropped_events,
        "{ctx}: metrics dropped != stats.dropped_events"
    );
    let per_worker_consumed: u64 = m.per_worker.iter().map(|w| w.consumed).sum();
    prop_assert_eq!(
        per_worker_consumed,
        m.conservation.consumed,
        "{ctx}: per-worker consumed must sum to the ledger total"
    );
    Ok(())
}

fn cfg_for(plan: PlanKind, workers: usize) -> ProfilerConfig {
    let mut cfg = ProfilerConfig::default()
        .with_workers(workers)
        .with_chunk_capacity(8)
        .with_redistribution(false);
    cfg.queue_chunks = 4;
    match plan {
        PlanKind::Inert => cfg,
        PlanKind::Panic { worker, after_chunks } => cfg
            .with_fault_plan(FaultPlan::none().with_panic(worker % workers, after_chunks))
            .with_drain_deadline_ms(500),
        PlanKind::Stall { worker, after_chunks } => cfg
            .with_fault_plan(FaultPlan::none().with_stall(worker % workers, after_chunks))
            .with_overflow(OverflowPolicy::Drop)
            .with_stall_deadline_ms(10)
            .with_drain_deadline_ms(100),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// THE headline invariant: for every transport kind and every fault
    /// plan, `pushed == consumed + dropped + rerouted +
    /// in_flight_at_shutdown`, and losses agree with the engine's own
    /// accounting.
    #[test]
    fn conservation_holds_across_transports_and_faults(
        evs in arb_stream(),
        plan in arb_plan(),
        workers in 2usize..5,
    ) {
        for kind in [TransportKind::Spsc, TransportKind::Mpmc, TransportKind::Lock] {
            let cfg = cfg_for(plan, workers).with_transport(kind);
            let mut p: AnyParallelProfiler<PerfectSignature> =
                AnyParallelProfiler::new(cfg, PerfectSignature::new);
            for e in &evs {
                p.event(*e);
            }
            let r = p.finish();
            assert_conserved(&r, &format!("{kind:?}/{plan:?}/w{workers}"))?;
            if plan == PlanKind::Inert && r.metrics.enabled {
                // A healthy run loses nothing: everything pushed was
                // consumed and the queues drained empty.
                prop_assert_eq!(r.metrics.conservation.pushed, evs.len() as u64);
                prop_assert_eq!(r.metrics.conservation.consumed, evs.len() as u64);
                prop_assert_eq!(r.metrics.conservation.in_flight_at_shutdown, 0);
                prop_assert_eq!(r.metrics.chunks.pushed, r.metrics.chunks.consumed);
            }
        }
    }
}

/// Chaos sweep: a transport that injects seeded spurious send failures
/// and empty receives only costs retries — the ledger still balances,
/// nothing is dropped, and the snapshot records the retry traffic. Eight
/// seeds by default; `DEPPROF_CHAOS_SEED` pins one for reproduction.
#[test]
fn conservation_holds_under_chaotic_transport_seeds() {
    let evs: Vec<TraceEvent> = (0..400u64)
        .map(|i| {
            TraceEvent::Access(MemAccess::write(
                0x1000 + (i % 64) * 8,
                i + 1,
                loc(1, 1 + (i % 50) as u32),
                1,
                0,
            ))
        })
        .collect();
    // `DEPPROF_CHAOS_SEED=a,b,c` overrides; garbage warns and falls back
    // instead of silently running nothing (or panicking the sweep).
    let seeds = depprof::queue::chaos_seeds(&[1, 7, 42, 1234, 2025, 31337, 86243, 216091]);
    for seed in seeds {
        let plan = FaultPlan::none().with_seed(seed).with_spurious(25, 25);
        let transport = FailingTransport::new(SpscTransport, plan);
        let mut cfg = ProfilerConfig::default()
            .with_workers(3)
            .with_chunk_capacity(8)
            .with_redistribution(false);
        cfg.queue_chunks = 4;
        let mut p: ParallelProfiler<PerfectSignature, _> =
            ParallelProfiler::with_transport(transport, cfg, PerfectSignature::new);
        for e in &evs {
            p.event(*e);
        }
        let r = p.finish();
        assert!(!r.degraded(), "seed {seed}: {:?}", r.stats.worker_failures);
        if !r.metrics.enabled {
            continue;
        }
        let c = &r.metrics.conservation;
        assert!(c.holds(), "seed {seed}: conservation violated: {c:?}");
        assert_eq!(c.pushed, evs.len() as u64, "seed {seed}");
        assert_eq!(c.consumed, evs.len() as u64, "seed {seed}");
        assert_eq!(c.dropped, 0, "seed {seed}");
        assert_eq!(c.rerouted, 0, "seed {seed}");
    }
}

/// The service layer obeys the same discipline as the pipeline: every
/// event *delivered* to a session engine — including resend overlap and
/// duplicated frames — is accounted exactly once, as profiled or as
/// `events_skipped_on_resume`, across interrupt, hibernation and
/// rehydration. The per-incarnation ledger is
///
/// ```text
/// delivered == profiled + skipped_on_resume
/// ```
///
/// and the profiled totals across incarnations must sum to the stream.
#[test]
fn service_counters_balance_the_resume_ledger() {
    use depprof::server::SessionEngine;
    use depprof::trace::FrameChunker;
    use depprof::types::protocol::{Frame, Hello};

    let evs: Vec<TraceEvent> = (0..150u64)
        .map(|i| {
            TraceEvent::Access(MemAccess::write(
                0x1000 + (i % 48) * 8,
                i + 1,
                loc(1, 1 + (i % 30) as u32),
                1,
                0,
            ))
        })
        .collect();
    let frames: Vec<Frame> = {
        let mut chunker = FrameChunker::new(16);
        let mut out: Vec<Frame> = evs.iter().flat_map(|e| chunker.push(*e)).collect();
        out.extend(chunker.flush());
        out
    };
    let delivered = |f: &Frame| match f {
        Frame::Chunk { accesses, .. } => accesses.len() as u64,
        Frame::LoopEvent { .. } => 1,
        _ => 0,
    };
    let hello = |names: Vec<String>| Hello {
        session: "ledger".into(),
        spec: depprof::core::SessionSpec::default().encode(),
        // Non-zero so the engine builds its checkpoint store up front
        // (the interval itself is too large to fire periodically).
        checkpoint_every: 1_000_000,
        names,
    };
    let base = std::env::temp_dir().join(format!("dp-metrics-ledger-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    // Incarnation 1: every frame of the first half is delivered twice
    // (duplicate delivery); the engine must profile each event once and
    // ledger the copies as skipped. An emergency checkpoint ends it.
    let (mut one, ack) = SessionEngine::open(&hello(Vec::new()), 1, Some(&base), 0).unwrap();
    assert!(matches!(ack, Frame::HelloAck { resume_from: 0, .. }));
    let cut = frames.len() / 2;
    let mut delivered_1 = 0u64;
    for f in &frames[..cut] {
        for _ in 0..2 {
            delivered_1 += delivered(f);
            one.handle(f.clone()).unwrap();
        }
    }
    let m1 = *one.metrics();
    assert_eq!(m1.rehydrated, 0);
    assert_eq!(delivered_1, m1.events + m1.events_skipped_on_resume, "incarnation 1 ledger");
    assert_eq!(m1.events_skipped_on_resume, m1.events, "every frame was delivered twice");
    let watermark = one.position();
    one.write_checkpoint().unwrap();
    drop(one);

    // Incarnation 2: rehydrates from the checkpoint, is told the exact
    // watermark, receives a full resend from position 0, then hibernates.
    let (mut two, ack) = SessionEngine::open(&hello(Vec::new()), 2, Some(&base), 0).unwrap();
    assert!(matches!(ack, Frame::HelloAck { resume_from, .. } if resume_from == watermark));
    let mut delivered_2 = 0u64;
    for f in &frames {
        delivered_2 += delivered(f);
        two.handle(f.clone()).unwrap();
    }
    let m2 = *two.metrics();
    assert_eq!(m2.rehydrated, 1, "incarnation 2 must count its rehydration");
    assert_eq!(delivered_2, m2.events + m2.events_skipped_on_resume, "incarnation 2 ledger");
    assert_eq!(m2.events_skipped_on_resume, watermark, "resent prefix is skipped exactly");
    assert_eq!(two.position(), evs.len() as u64);
    two.hibernate().unwrap();
    assert_eq!(two.metrics().hibernated, 1, "hibernation must be counted");

    // Incarnation 3: rehydrates from the hibernation checkpoint with
    // nothing left to feed; profiled totals across incarnations must
    // cover the stream exactly once.
    let (mut three, ack) = SessionEngine::open(&hello(Vec::new()), 3, Some(&base), 0).unwrap();
    assert!(matches!(ack, Frame::HelloAck { resume_from, .. } if resume_from == evs.len() as u64));
    let m3 = *three.metrics();
    assert_eq!(m3.rehydrated, 1, "incarnation 3 must count its rehydration");
    assert_eq!(
        m1.events + m2.events + m3.events,
        evs.len() as u64,
        "incarnations together profile the stream exactly once"
    );
    // The counters are stamped into the profile snapshot on finish.
    three.set_reconnects(2);
    let result = three.finish_result().expect("live engine finishes");
    assert_eq!(result.metrics.service.reconnects, 2);
    assert_eq!(result.metrics.service.rehydrated, 1);
    assert_eq!(result.metrics.service.events_skipped_on_resume, 0);
    let _ = std::fs::remove_dir_all(&base);
}

/// The panic path attributes losses per worker: the dead worker's queue
/// residue shows up as `dropped` + `in_flight_at_shutdown`, never as a
/// silent imbalance, and the surviving workers' ledgers stay clean.
#[cfg(feature = "fault-inject")]
#[test]
fn panic_losses_are_attributed_not_silent() {
    const WORKERS: usize = 4;
    let evs: Vec<TraceEvent> = (0..512u64)
        .map(|i| {
            TraceEvent::Access(MemAccess::write(
                0x1000 + (i % 64) * 8,
                i + 1,
                loc(1, 1 + (i % 40) as u32),
                1,
                0,
            ))
        })
        .collect();
    let cfg = ProfilerConfig::default()
        .with_workers(WORKERS)
        .with_chunk_capacity(8)
        .with_redistribution(false)
        .with_fault_plan(FaultPlan::none().with_panic(2, 0))
        .with_drain_deadline_ms(500)
        .with_transport(TransportKind::Mpmc);
    let mut p: AnyParallelProfiler<PerfectSignature> =
        AnyParallelProfiler::new(cfg, PerfectSignature::new);
    // Feed a first slice, then give the supervisor time to notice the
    // (immediate) death of worker 2, so the rest of its residue class is
    // *diverted* rather than enqueued to a corpse.
    let (first, rest) = evs.split_at(64);
    for e in first {
        p.event(*e);
    }
    std::thread::sleep(std::time::Duration::from_millis(300));
    for e in rest {
        p.event(*e);
    }
    let r = p.finish();
    assert!(r.degraded());
    if !r.metrics.enabled {
        return;
    }
    let c = &r.metrics.conservation;
    assert!(c.holds(), "conservation violated: {c:?}");
    assert_eq!(c.dropped, r.stats.dropped_events);
    // Worker 2 died before consuming anything, yet traffic to its residue
    // class after the death is diverted to a survivor and *marked*: those
    // copies appear in `rerouted` and nowhere else.
    assert!(c.rerouted > 0, "diverted traffic must be ledgered: {c:?}");
    for w in &r.metrics.per_worker {
        if w.worker != 2 {
            assert_eq!(w.dropped, 0, "survivor {} must not drop", w.worker);
        }
    }
}
