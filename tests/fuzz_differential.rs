//! End-to-end differential fuzzing through the `depprof::fuzz` facade.
//!
//! The unit tests inside `crates/fuzz` exercise the oracle and driver in
//! isolation; this suite checks the integration the CI `fuzz-smoke` job
//! relies on: a clean campaign over the public facade reports zero
//! divergences, and a campaign with an injected event-stream corruption
//! both *catches* the divergence and *shrinks* the witness program to a
//! handful of statements.

use depprof::fuzz::{check_program, run_fuzz, Corruption, FuzzOpts, OracleConfig};
use depprof::trace::fuzz::{parse_program, print_program, stmt_count};

fn quiet() -> impl FnMut(String) {
    |_line| {}
}

#[test]
fn facade_campaign_is_clean() {
    let opts = FuzzOpts { seeds: 10, quick: true, webscale: false, ..FuzzOpts::default() };
    let report = run_fuzz(&opts, &mut quiet());
    assert!(report.passed(), "clean campaign diverged: {:?}", report.divergences);
    assert_eq!(report.seeds, 10);
    assert!(report.sequential > 0 && report.mt > 0, "campaign must mix program shapes");
    assert!(report.total_accesses > 0);
}

#[test]
fn injected_corruption_is_caught_and_shrunk_via_facade() {
    let corpus = std::env::temp_dir().join("depprof-fuzz-facade-corpus");
    let _ = std::fs::remove_dir_all(&corpus);
    let opts = FuzzOpts {
        seeds: 24,
        quick: true,
        webscale: false,
        corpus_dir: Some(corpus.clone()),
        corruption: Some(Corruption::DropAccess(7)),
        ..FuzzOpts::default()
    };
    let report = run_fuzz(&opts, &mut quiet());
    assert!(!report.passed(), "dropping a profiled access must surface as a divergence");
    let d = &report.divergences[0];
    assert!(
        d.stmts <= 20,
        "minimizer left {} statements for seed {} (leg {})",
        d.stmts,
        d.seed,
        d.leg
    );

    // The saved repro must round-trip through the corpus text format and
    // still describe the shrunken witness.
    let path = d.corpus_path.as_ref().expect("corpus repro written");
    let text = std::fs::read_to_string(path).unwrap();
    let reparsed = parse_program(&text).expect("committed repro parses");
    assert_eq!(stmt_count(&reparsed), d.stmts);
    assert_eq!(print_program(&reparsed), print_program(&d.program));

    // And the *uncorrupted* oracle accepts the same witness — the bug is
    // the injected corruption, not the program.
    check_program(&reparsed, &OracleConfig::default())
        .expect("witness is clean without the injected fault");
    let _ = std::fs::remove_dir_all(&corpus);
}
