//! Replays the committed fuzz corpus (`fuzz/corpus/*.minivm`).
//!
//! Every file in the corpus is a minimized witness program that once made
//! two engine legs disagree (under an injected fault — see the comment
//! header inside each file). Replaying them through the full clean oracle
//! on every CI run keeps historically-tricky program shapes covered as
//! ordinary regression tests.
//!
//! Regenerate with:
//!
//! ```text
//! UPDATE_CORPUS=1 cargo test --release --test fuzz_corpus
//! ```
//!
//! which re-runs two small corrupted campaigns (a dropped and a
//! duplicated profiled access) and rewrites the minimized repros.

use std::path::PathBuf;

use depprof::fuzz::{check_program, run_fuzz, Corruption, FuzzOpts, OracleConfig};
use depprof::trace::fuzz::{parse_program, stmt_count};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus")
}

fn regenerate(dir: &PathBuf) {
    for entry in std::fs::read_dir(dir).into_iter().flatten().flatten() {
        if entry.path().extension().is_some_and(|e| e == "minivm") {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }
    // Disjoint seed ranges per corruption so the repro filenames (which
    // encode seed + leg) never collide across campaigns.
    for (corruption, start_seed) in
        [(Corruption::DropAccess(7), 0), (Corruption::DuplicateAccess(3), 100)]
    {
        let opts = FuzzOpts {
            seeds: 4,
            start_seed,
            quick: true,
            webscale: false,
            corpus_dir: Some(dir.clone()),
            corruption: Some(corruption),
            ..FuzzOpts::default()
        };
        let report = run_fuzz(&opts, &mut |_| {});
        assert!(
            !report.divergences.is_empty(),
            "corrupted campaign {corruption:?} produced no repros to commit"
        );
    }
}

#[test]
fn committed_corpus_replays_clean() {
    let dir = corpus_dir();
    if std::env::var("UPDATE_CORPUS").is_ok() {
        regenerate(&dir);
    }

    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fuzz/corpus exists (run with UPDATE_CORPUS=1 to regenerate)")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "minivm"))
        .collect();
    files.sort();
    assert!(files.len() >= 2, "corpus must hold at least two committed repros, found {files:?}");

    let ocfg = OracleConfig::default();
    for path in &files {
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("; fuzz repro:"), "{path:?} lacks its provenance header");
        let prog = parse_program(&text)
            .unwrap_or_else(|e| panic!("{path:?} does not parse as MiniVM text: {e}"));
        assert!(stmt_count(&prog) <= 20, "{path:?} is not minimized");
        check_program(&prog, &ocfg).unwrap_or_else(|d| {
            panic!("corpus regression: {path:?} diverges on leg {} — {}", d.leg, d.detail)
        });
    }
}
