//! Robustness property tests for the two on-the-wire framings that
//! share `wire::{write_section, read_section}`: the DPSV network frame
//! protocol and the DPCK checkpoint container.
//!
//! The contract under test: **malformed bytes produce typed errors,
//! never a panic, a hang, or an unbounded allocation.** Truncations,
//! bit flips, oversized length prefixes and unknown tags are each
//! driven through both parsers. One suite covers both framings because
//! the framing (and thus the corruption model) is literally the same
//! code path.

use depprof::core::checkpoint::CheckpointData;
use depprof::types::protocol::{self, Frame, Hello, ProtocolError, MAX_FRAME_BYTES};
use depprof::types::{loc::loc, AccessKind, MemAccess, TraceEvent};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// The vendored proptest subset has no string strategies; arbitrary
/// bytes through a lossy UTF-8 decode cover ASCII, multibyte sequences
/// and replacement characters alike.
fn arb_string(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..max)
        .prop_map(|v| String::from_utf8_lossy(&v).into_owned())
}

fn arb_access() -> impl Strategy<Value = MemAccess> {
    ((any::<bool>(), 0u64..1 << 20, 0u64..1 << 16), (1u32..200, 0u32..64, 0u16..8)).prop_map(
        |((w, addr, ts), (line, var, thread))| MemAccess {
            addr: 0x1000 + addr,
            ts,
            loc: loc(1, line),
            var,
            thread,
            kind: if w { AccessKind::Write } else { AccessKind::Read },
        },
    )
}

/// Every frame kind the protocol defines, with arbitrary payloads.
fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (arb_string(12), prop::collection::vec(arb_string(8), 0..4), 0u64..1 << 16).prop_map(
            |(session, names, every)| {
                Frame::Hello(Hello {
                    session,
                    spec: depprof::core::SessionSpec::default().encode(),
                    checkpoint_every: every,
                    names,
                })
            }
        ),
        (any::<u64>(), any::<u64>())
            .prop_map(|(session_id, resume_from)| Frame::HelloAck { session_id, resume_from }),
        (0u64..1 << 40, prop::collection::vec(arb_access(), 0..32))
            .prop_map(|(base, accesses)| Frame::Chunk { base, accesses }),
        (0u64..1 << 40, 1u32..1 << 16, 0u64..1 << 10, 0u16..8).prop_map(
            |(seq, loop_id, ts, thread)| Frame::LoopEvent {
                seq,
                ev: TraceEvent::LoopBegin { loop_id, loc: loc(1, 1), thread, ts },
            }
        ),
        any::<u64>().prop_map(|nonce| Frame::Sync { nonce }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(nonce, position)| Frame::SyncAck { nonce, position }),
        any::<u64>().prop_map(|retry_after_ms| Frame::Busy { retry_after_ms }),
        Just(Frame::Finish),
        Just(Frame::StatsRequest),
        arb_string(40).prop_map(|json| Frame::Stats { json }),
        arb_string(60).prop_map(|text| Frame::Report { text }),
        (1u16..6, arb_string(30)).prop_map(|(code, message)| Frame::Error { code, message }),
        (any::<u64>(), 0u8..8).prop_map(|(id, kind)| Frame::Query { id, kind }),
        (any::<u64>(), 0u8..8, arb_string(60)).prop_map(|(id, kind, json)| Frame::QueryResult {
            id,
            kind,
            json
        }),
    ]
}

fn encode_frame(f: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    protocol::write_frame(&mut buf, f).expect("well-formed frame encodes");
    buf
}

fn arb_checkpoint() -> impl Strategy<Value = CheckpointData> {
    (
        1u64..1 << 20,
        0u64..1 << 20,
        prop::collection::vec(any::<u8>(), 0..32),
        prop::collection::vec(any::<u8>(), 0..32),
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 0..4),
    )
        .prop_map(|(generation, records_read, config, router, workers)| CheckpointData {
            generation,
            records_read,
            config,
            router: router.clone(),
            ledger: router,
            workers,
        })
}

/// Byte positions of the unchecksummed `len` prefixes in a buffer of
/// consecutive sections starting at `header` — the one region where a
/// single-byte checksum cannot promise detection (a shortened length
/// can land on a byte that happens to fold correctly). Everything else
/// (magic, tag, payload, checksum byte) is covered.
fn len_field_positions(bytes: &[u8], header: usize) -> Vec<usize> {
    let mut positions = Vec::new();
    let mut at = header;
    while at + 5 <= bytes.len() {
        positions.extend(at + 1..at + 5);
        let len = u32::from_le_bytes([bytes[at + 1], bytes[at + 2], bytes[at + 3], bytes[at + 4]])
            as usize;
        at += 1 + 4 + len + 1;
    }
    positions
}

// ---------------------------------------------------------------------
// DPSV frames
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Sanity anchor: every well-formed frame round-trips exactly.
    #[test]
    fn frames_roundtrip(f in arb_frame()) {
        let buf = encode_frame(&f);
        let back = protocol::read_frame(&mut buf.as_slice(), MAX_FRAME_BYTES)
            .expect("well-formed frame decodes")
            .expect("non-empty stream");
        prop_assert_eq!(back, f);
    }

    /// A stream cut anywhere strictly inside a frame is a typed error;
    /// cut before the frame starts it is a clean end-of-stream.
    #[test]
    fn truncated_frames_are_typed((f, raw) in (arb_frame(), any::<u64>())) {
        let buf = encode_frame(&f);
        let cut = (raw as usize) % buf.len();
        let r = protocol::read_frame(&mut &buf[..cut], MAX_FRAME_BYTES);
        if cut == 0 {
            prop_assert!(matches!(r, Ok(None)), "empty stream is a clean EOF: {r:?}");
        } else {
            prop_assert!(r.is_err(), "cut at {cut}/{} must be typed, got {r:?}", buf.len());
        }
    }

    /// A single bit flip anywhere outside the (unchecksummed) length
    /// prefix is always caught — checksum mismatch, bad sub-tag, or a
    /// payload that no longer decodes. Flips inside the length prefix
    /// must still parse without panicking (typed error or, in the
    /// astronomically rare folding coincidence, a different frame) —
    /// `read_frame` itself running to completion is the property.
    #[test]
    fn bit_flips_are_caught_or_typed((f, raw, bit) in (arb_frame(), any::<u64>(), 0u8..8)) {
        let mut buf = encode_frame(&f);
        let pos = (raw as usize) % buf.len();
        buf[pos] ^= 1 << bit;
        let r = protocol::read_frame(&mut buf.as_slice(), MAX_FRAME_BYTES);
        if !len_field_positions(&buf, 0).contains(&pos) {
            match r {
                Err(_) => {}
                Ok(decoded) => prop_assert!(
                    false,
                    "flip at byte {pos} bit {bit} went undetected: {decoded:?}"
                ),
            }
        }
    }

    /// An adversarial length prefix is rejected *before* any buffer of
    /// that size is allocated — the read-side memory bound.
    #[test]
    fn oversized_frames_are_rejected_up_front((tag, len) in (any::<u8>(), 1u64 << 20..u32::MAX as u64)) {
        let mut buf = vec![tag];
        buf.extend_from_slice(&(len as u32).to_le_bytes());
        // No payload follows: if the bound check were missing, the
        // parser would try to read (and first allocate) `len` bytes.
        let max = 64 * 1024;
        let r = protocol::read_frame(&mut buf.as_slice(), max);
        prop_assert!(
            matches!(r, Err(ProtocolError::FrameTooLarge { len: l, max: m }) if l == len as usize && m == max),
            "got {r:?}"
        );
    }

    /// Unknown frame tags (15+ — v2 tops out at QueryResult = 14) are a
    /// typed protocol error, not a desync.
    #[test]
    fn unknown_tags_are_typed((tag, payload) in (15u8..=255, prop::collection::vec(any::<u8>(), 0..64))) {
        let mut w = depprof::types::ByteWriter::new();
        depprof::types::write_section(&mut w, tag, &payload);
        let buf = w.into_bytes();
        let r = protocol::read_frame(&mut buf.as_slice(), MAX_FRAME_BYTES);
        prop_assert!(
            matches!(r, Err(ProtocolError::UnknownFrame { tag: t }) if t == tag),
            "got {r:?}"
        );
    }
}

// ---------------------------------------------------------------------
// DPCK containers — same section codec, same corruption model
// ---------------------------------------------------------------------

/// Magic (4) + version (1) precede the first section in a container.
const DPCK_HEADER: usize = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn checkpoints_roundtrip(d in arb_checkpoint()) {
        let back = CheckpointData::decode(&d.encode()).expect("well-formed container decodes");
        prop_assert_eq!(back, d);
    }

    /// A container cut anywhere strictly inside is a typed error (a
    /// torn checkpoint write must never be mistaken for a short one).
    #[test]
    fn truncated_checkpoints_are_typed((d, raw) in (arb_checkpoint(), any::<u64>())) {
        let buf = d.encode();
        let cut = (raw as usize) % buf.len();
        prop_assert!(CheckpointData::decode(&buf[..cut]).is_err(), "cut at {cut}");
    }

    /// Bit flips outside the length prefixes are always detected
    /// (magic, version and the META/worker-count cross-checks catch
    /// what the per-section checksums do not); length-prefix flips must
    /// decode without panicking.
    #[test]
    fn checkpoint_bit_flips_are_caught_or_typed((d, raw, bit) in (arb_checkpoint(), any::<u64>(), 0u8..8)) {
        let mut buf = d.encode();
        let pos = (raw as usize) % buf.len();
        buf[pos] ^= 1 << bit;
        let r = CheckpointData::decode(&buf);
        if !len_field_positions(&buf, DPCK_HEADER).contains(&pos) {
            match r {
                Err(_) => {}
                Ok(decoded) => prop_assert!(
                    false,
                    "flip at byte {pos} bit {bit} went undetected: {decoded:?}"
                ),
            }
        }
    }
}
