//! Offline profiling: a recorded trace replayed through any engine must
//! produce exactly the live result.

use depprof::core::SequentialProfiler;
use depprof::trace::workloads::{nas_suite, starbench_suite, Scale};
use depprof::trace::{Interp, TraceReader, TraceWriter};

#[test]
fn replayed_trace_equals_live_profile() {
    for w in [&nas_suite(Scale(0.03))[3], &starbench_suite(Scale(0.03))[2]] {
        // live
        let vm = Interp::new(&w.program);
        let mut live = SequentialProfiler::with_signature(1 << 16);
        vm.run_seq(&mut live);
        let live = live.finish();
        // record
        let vm = Interp::new(&w.program);
        let mut wtr = TraceWriter::with_names(Vec::new(), &w.program.interner).unwrap();
        vm.run_seq(&mut wtr);
        let bytes = wtr.finish().unwrap();
        // replay
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.interner().len(), w.program.interner.len());
        let mut replayed = SequentialProfiler::with_signature(1 << 16);
        for ev in &mut reader {
            replayed.on_event(&ev.unwrap());
        }
        let replayed = replayed.finish();

        assert_eq!(live.stats.accesses, replayed.stats.accesses, "{}", w.meta.name);
        assert_eq!(live.stats.deps_built, replayed.stats.deps_built, "{}", w.meta.name);
        let a = depprof::core::report::render(&live, &w.program.interner, false);
        let b = depprof::core::report::render(&replayed, &w.program.interner, false);
        assert_eq!(a, b, "{}: replayed report differs", w.meta.name);
    }
}

#[test]
fn one_recording_feeds_many_signature_sizes() {
    // The offline workflow of the Table I experiment: record once,
    // evaluate accuracy at several sizes without re-running the program.
    let w = &starbench_suite(Scale(0.03))[0]; // c-ray
    let vm = Interp::new(&w.program);
    let mut wtr = TraceWriter::with_names(Vec::new(), &w.program.interner).unwrap();
    vm.run_seq(&mut wtr);
    let bytes = wtr.finish().unwrap();

    let replay = |slots: usize| {
        let mut p = SequentialProfiler::with_signature(slots);
        for ev in TraceReader::new(&bytes[..]).unwrap() {
            p.on_event(&ev.unwrap());
        }
        p.finish()
    };
    let small = replay(256);
    let big = replay(1 << 20);
    assert_eq!(small.stats.accesses, big.stats.accesses);
    // Small signatures merge colliding addresses into fewer/other records;
    // both runs came from one recording.
    assert!(big.stats.deps_merged > 0);
}
