//! The communication-topology suite, verified through the *profiler*
//! (not ground truth): the Figure 9 method must recover each kernel's
//! known topology from cross-thread RAW records alone.

use depprof::analysis::communication_matrix;
use depprof::core::ProfilerConfig;
use depprof::trace::workloads::{splash, Scale};

fn profile(w: &depprof::trace::workloads::Workload) -> depprof::core::ProfileResult {
    // Section VII: applications use signatures large enough for exact
    // dependences.
    let ample = (w.program.address_footprint() as usize * 64).next_power_of_two();
    let cfg = ProfilerConfig::default().with_workers(4).with_slots(ample);
    depprof::profile_mt(&w.program, cfg)
}

#[test]
fn fft_matrix_is_dense_all_to_all() {
    let t = 4u32;
    let w = splash::fft(Scale(0.1), t);
    let m = communication_matrix(&profile(&w), t as usize + 1);
    for p in 1..=t as u16 {
        for c in 1..=t as u16 {
            if p != c {
                assert!(m.get(p, c) > 0, "missing flow t{p}->t{c}\n{}", m.render_ascii());
            }
        }
    }
}

#[test]
fn lu_matrix_shows_rotating_broadcast() {
    let t = 3u32;
    let w = splash::lu_contig(Scale(0.1), t);
    let m = communication_matrix(&profile(&w), t as usize + 1);
    for p in 1..=t as u16 {
        let consumers = (1..=t as u16).filter(|&c| c != p && m.get(p, c) > 0).count();
        assert_eq!(
            consumers,
            t as usize - 1,
            "producer t{p} does not broadcast\n{}",
            m.render_ascii()
        );
    }
}

#[test]
fn ocean_matrix_is_grid_banded() {
    let t = 6u32; // 2 x 3 grid
    let cols = 3i64;
    let w = splash::ocean(Scale(0.1), t);
    let m = communication_matrix(&profile(&w), t as usize + 1);
    let (mut nb, mut far) = (0u64, 0u64);
    for p in 1..=t as u16 {
        for c in 1..=t as u16 {
            if p == c {
                continue;
            }
            let (pr, pc) = (((p - 1) as i64) / cols, ((p - 1) as i64) % cols);
            let (cr, cc) = (((c - 1) as i64) / cols, ((c - 1) as i64) % cols);
            if (pr - cr).abs() + (pc - cc).abs() == 1 {
                nb += m.get(p, c);
            } else {
                far += m.get(p, c);
            }
        }
    }
    assert!(nb > 0 && nb > far * 5, "nb={nb} far={far}\n{}", m.render_ascii());
}

#[test]
fn comm_kernels_are_race_free() {
    for w in splash::comm_suite(Scale(0.05), 4) {
        let r = profile(&w);
        assert_eq!(r.stats.reversed, 0, "{} flagged reversals", w.meta.name);
    }
}
