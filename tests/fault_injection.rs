//! Deterministic fault-injection suite (scripted via [`FaultPlan`]).
//!
//! Each test drives a recovery path of the fault-tolerant pipeline with a
//! seeded, reproducible fault script: a worker panic mid-run, a stalled
//! worker under the `drop` overflow policy, torn/corrupted trace files,
//! and a transport that injects spurious failures. The invariants are the
//! ones DESIGN.md's failure model promises: no fault ever aborts the
//! process, losses are counted exactly, and a fault plan that never fires
//! changes nothing.

use std::time::Instant;

use depprof::core::parallel::{AnyParallelProfiler, ParallelProfiler};
use depprof::core::{
    FailureCause, FaultPlan, OverflowPolicy, ProfileResult, ProfilerConfig, SequentialProfiler,
    SpscProfiler, TransportKind,
};
use depprof::queue::{FailingTransport, SpscTransport};
use depprof::sig::PerfectSignature;
use depprof::trace::tracefile::TraceFileError;
use depprof::trace::{TraceReader, TraceWriter};
use depprof::types::{loc::loc, MemAccess, TraceEvent, Tracer};

const WORKERS: usize = 4;

/// Address owned by worker `k` (Formula 1: `(addr >> 3) % W`): `0x1000`
/// is `%W`-aligned, so `0x1000 + (k + W*j) * 8` routes to `k`.
fn addr_of(k: usize, j: u64) -> u64 {
    0x1000 + (k as u64 + WORKERS as u64 * j) * 8
}

/// Sink lines encode their owner so baseline dependences can be filtered
/// per worker: worker `k`'s reads sit at line `2000 + 10*k + j`.
fn per_worker_stream() -> Vec<TraceEvent> {
    let mut evs = Vec::new();
    let mut ts = 0;
    for k in 0..WORKERS {
        for j in 0..8u64 {
            ts += 1;
            let line = (10 * k as u32) + j as u32;
            evs.push(TraceEvent::Access(MemAccess::write(
                addr_of(k, j),
                ts,
                loc(1, 1000 + line),
                1,
                0,
            )));
            ts += 1;
            evs.push(TraceEvent::Access(MemAccess::read(
                addr_of(k, j),
                ts,
                loc(1, 2000 + line),
                1,
                0,
            )));
        }
    }
    evs
}

fn run_serial(evs: &[TraceEvent]) -> ProfileResult {
    let mut p = SequentialProfiler::perfect();
    for e in evs {
        p.on_event(e);
    }
    p.finish()
}

fn idents(r: &ProfileResult) -> Vec<(String, u64)> {
    let mut v: Vec<_> =
        r.deps.dependences().map(|(d, e)| (format!("{:?}", d.identity()), e.count)).collect();
    v.sort();
    v
}

/// ISSUE scenario: an injected worker panic must degrade the result, not
/// abort the process, and 100% of the *surviving* workers' dependences
/// must still be reported.
#[test]
fn worker_panic_preserves_all_surviving_workers_dependences() {
    let evs = per_worker_stream();
    let serial = run_serial(&evs);

    let cfg = ProfilerConfig::default()
        .with_workers(WORKERS)
        .with_chunk_capacity(4)
        .with_redistribution(false)
        .with_fault_plan(FaultPlan::none().with_panic(2, 0));
    let mut p: SpscProfiler<PerfectSignature> = ParallelProfiler::new(cfg, PerfectSignature::new);
    for e in &evs {
        p.event(*e);
    }
    let r = p.finish();

    assert!(r.degraded(), "a dead worker must mark the profile degraded");
    assert_eq!(r.stats.worker_failures.len(), 1);
    let f = &r.stats.worker_failures[0];
    assert_eq!(f.worker, 2);
    assert_eq!(f.workers, WORKERS);
    assert!(matches!(&f.cause, FailureCause::Panic(msg) if msg.contains("injected fault")), "{f}");

    // Every baseline dependence whose sink belongs to a surviving worker
    // must be present. Sink lines are `1000 + 10k + j` (writes) and
    // `2000 + 10k + j` (reads), so the owner is `(line % 1000) / 10`.
    let got = idents(&r);
    let mut surviving = 0;
    for (d, e) in serial.deps.dependences() {
        let owner = (d.sink.loc.line as usize % 1000) / 10;
        if owner == 2 {
            continue; // the dead worker's residue class may be lost
        }
        surviving += 1;
        let ident = (format!("{:?}", d.identity()), e.count);
        assert!(got.contains(&ident), "surviving-worker dependence missing: {}", ident.0);
    }
    assert!(surviving > 0, "the filter must leave dependences to check");
}

/// ISSUE scenario: with `--overflow drop` and a stalled worker, the run
/// terminates within its deadlines and the drop counters account for
/// every lost event *exactly*: the ring holds `queue_chunks` chunks of
/// `chunk_capacity` events, everything beyond that is dropped.
#[test]
fn drop_overflow_under_stalled_worker_counts_exactly() {
    const CHUNK: usize = 16;
    const QUEUE_CHUNKS: usize = 4; // power of two: the SPSC ring keeps it as-is
    const N: u64 = 256;
    let expected_drops = N - (QUEUE_CHUNKS * CHUNK) as u64;

    let mut cfg = ProfilerConfig::default()
        .with_workers(2)
        .with_chunk_capacity(CHUNK)
        .with_redistribution(false)
        .with_overflow(OverflowPolicy::Drop)
        .with_stall_deadline_ms(50)
        .with_drain_deadline_ms(300)
        .with_fault_plan(FaultPlan::none().with_stall(0, 0));
    cfg.queue_chunks = QUEUE_CHUNKS;

    let started = Instant::now();
    let mut p: SpscProfiler<PerfectSignature> = ParallelProfiler::new(cfg, PerfectSignature::new);
    for j in 0..N {
        // (0x1000 + 16j) >> 3 is even: every event is owned by worker 0.
        p.event(TraceEvent::Access(MemAccess::write(
            0x1000 + j * 16,
            j + 1,
            loc(1, 1 + j as u32),
            1,
            0,
        )));
    }
    let r = p.finish();
    let elapsed = started.elapsed();

    assert!(r.degraded());
    assert_eq!(r.stats.dropped_events, expected_drops, "exact drop accounting");
    assert_eq!(r.stats.dropped_per_worker, vec![expected_drops, 0]);
    assert_eq!(r.stats.worker_failures.len(), 1);
    assert_eq!(r.stats.worker_failures[0].worker, 0);
    assert!(matches!(r.stats.worker_failures[0].cause, FailureCause::Unresponsive));
    // 50ms stall deadline + 300ms drain deadline, generously bounded.
    assert!(elapsed.as_secs() < 5, "blocked for {elapsed:?} despite drop policy");
}

/// ISSUE scenario: a truncated or corrupted trace is rejected with the
/// right typed error, never a panic or a silent partial replay.
#[test]
fn damaged_traces_fail_typed() {
    let mut w = TraceWriter::new(Vec::new()).unwrap();
    for e in per_worker_stream() {
        w.event(e);
    }
    let clean = w.finish().unwrap();

    // Whole file replays.
    let n = TraceReader::new(&clean[..]).unwrap().map(Result::unwrap).count();
    assert_eq!(n, per_worker_stream().len());

    // Truncated mid-record: everything before the tear replays, then a
    // TornRecord — not a clean end, not an io::Error.
    let cut = &clean[..clean.len() - 7];
    let items: Vec<_> = TraceReader::new(cut).unwrap().collect();
    assert_eq!(items.len(), n);
    assert!(items[..n - 1].iter().all(Result::is_ok));
    assert!(matches!(items[n - 1], Err(TraceFileError::TornRecord { .. })), "{:?}", items[n - 1]);

    // One flipped payload bit: the record's checksum catches it.
    let mut corrupt = clean.clone();
    let last_record = corrupt.len() - 10;
    corrupt[last_record] ^= 0x01;
    let items: Vec<_> = TraceReader::new(&corrupt[..]).unwrap().collect();
    assert!(matches!(items.last().unwrap(), Err(TraceFileError::Checksum { .. })));

    // Not a trace at all.
    assert!(matches!(
        TraceReader::new(&b"PNG\x89 definitely not"[..]),
        Err(TraceFileError::NotATrace)
    ));
}

/// A fault plan that never fires must change nothing: every transport
/// still reproduces the serial engine's exact dependence set.
#[test]
fn every_transport_equals_serial_with_inert_fault_plan() {
    let evs = per_worker_stream();
    let expected = idents(&run_serial(&evs));
    for kind in [TransportKind::Spsc, TransportKind::Mpmc, TransportKind::Lock] {
        let cfg = ProfilerConfig::default()
            .with_workers(3)
            .with_chunk_capacity(8)
            .with_transport(kind)
            .with_fault_plan(FaultPlan::none());
        let mut p: AnyParallelProfiler<PerfectSignature> =
            AnyParallelProfiler::new(cfg, PerfectSignature::new);
        for e in &evs {
            p.event(*e);
        }
        let r = p.finish();
        assert!(!r.degraded(), "transport {kind:?}: {:?}", r.stats.worker_failures);
        assert_eq!(expected, idents(&r), "transport {kind:?}");
    }
}

/// A transport that spuriously fails sends and receives (seeded, so
/// reproducible) only costs retries: the dependence set stays exact and
/// the run is NOT degraded. Several seeds, so CI sweeps distinct
/// interleavings of the injected failures.
#[test]
fn chaotic_transport_stays_exact_across_seeds() {
    let evs = per_worker_stream();
    let expected = idents(&run_serial(&evs));
    // `DEPPROF_CHAOS_SEED=a,b,c` overrides; garbage warns and falls back
    // instead of silently running nothing (or panicking the sweep).
    let seeds = depprof::queue::chaos_seeds(&[1, 7, 42, 1234]);
    for seed in seeds {
        let plan = FaultPlan::none().with_seed(seed).with_spurious(25, 25);
        let transport = FailingTransport::new(SpscTransport, plan);
        let cfg = ProfilerConfig::default().with_workers(3).with_chunk_capacity(8);
        let mut p: ParallelProfiler<PerfectSignature, _> =
            ParallelProfiler::with_transport(transport, cfg, PerfectSignature::new);
        for e in &evs {
            p.event(*e);
        }
        let r = p.finish();
        assert!(!r.degraded(), "seed {seed}: {:?}", r.stats.worker_failures);
        assert_eq!(expected, idents(&r), "seed {seed}");
    }
}
