//! End-to-end tests of the Section VIII analysis framework and the
//! machine-readable exports, on real workloads.

use depprof::analysis::{stability, union_runs, DepGraph, Framework, LoopMeta, LoopTable};
use depprof::core::report;
use depprof::trace::workloads::{nas_suite, starbench_suite, Scale};

fn metas(p: &depprof::trace::Program) -> Vec<LoopMeta> {
    p.loops.iter().map(|l| LoopMeta { id: l.id, name: l.name.clone(), omp: l.omp }).collect()
}

#[test]
fn framework_over_cg_reports_reductions() {
    let w = &nas_suite(Scale(0.05))[5]; // CG
    let r = depprof::profile_sequential(&w.program, 1 << 20);
    let mut fw = Framework::with_builtin();
    let reports = fw.run(&r, &w.program.interner, &metas(&w.program), &w.program.func_names, 0);
    let par = &reports.iter().find(|(n, _)| n == "parallelism-discovery").unwrap().1;
    assert!(par.contains("7 reduction candidates"), "{par}");
    assert!(par.contains("dot_rho"));
    let comm = &reports.iter().find(|(n, _)| n == "communication-pattern").unwrap().1;
    assert!(comm.contains("sequential target"));
}

#[test]
fn loop_table_matches_table2_for_ft() {
    let w = &nas_suite(Scale(0.05))[7]; // FT: 8 OMP, 7 identifiable
    let r = depprof::profile_sequential(&w.program, 1 << 20);
    let t = LoopTable::build(&r, &metas(&w.program));
    let id: Vec<_> = t
        .parallelizable()
        .filter(|row| row.verdict.meta.omp)
        .map(|row| row.verdict.meta.name.clone())
        .collect();
    assert_eq!(id.len(), 7, "{id:?}");
    let red: Vec<_> = t.reduction_candidates().map(|row| row.verdict.meta.name.clone()).collect();
    assert_eq!(red, ["checksum"]);
}

#[test]
fn dependence_graph_exports_dot_for_real_program() {
    let w = &starbench_suite(Scale(0.03))[2]; // md5
    let r = depprof::profile_sequential_perfect(&w.program);
    let g = DepGraph::build(&r);
    let (nodes, edges) = g.size();
    assert!(nodes > 5 && edges > 5, "{nodes} {edges}");
    let dot = g.to_dot(false);
    assert!(dot.starts_with("digraph deps"));
    assert_eq!(dot.matches(" -> ").count(), edges);
    // md5's state chain must make the RAW depth non-trivial.
    assert!(g.raw_depth() >= 2, "depth {}", g.raw_depth());
}

#[test]
fn csv_export_has_one_row_per_merged_dep() {
    let w = &nas_suite(Scale(0.03))[4]; // EP
    let r = depprof::profile_sequential(&w.program, 1 << 18);
    let csv = report::to_csv(&r, &w.program.interner);
    let rows = csv.lines().count() - 1; // minus header
    assert_eq!(rows as u64, r.stats.deps_merged);
    assert!(csv.lines().skip(1).all(|l| l.split(',').count() == 9));
}

#[test]
fn union_of_scales_models_input_sensitivity() {
    // "running the target program with changing inputs and computing the
    // union of all collected dependences" (Section I). Larger inputs of
    // IS reach histogram buckets the small input misses; the union must
    // be a superset of every run and eventually stabilize.
    let runs: Vec<_> = [0.02, 0.04, 0.04, 0.06]
        .iter()
        .map(|&s| {
            let w = &nas_suite(Scale(s))[3]; // IS: data-dependent accesses
            depprof::profile_sequential_perfect(&w.program)
        })
        .collect();
    let counts: Vec<u64> = runs.iter().map(|r| r.stats.deps_merged).collect();
    let curve = stability(&runs);
    assert!(curve[0].2 > 0);
    assert!(curve.last().unwrap().1 >= *counts.iter().max().unwrap());
    let u = union_runs(runs);
    assert!(u.stats.deps_merged >= *counts.iter().max().unwrap());
    assert_eq!(u.stats.deps_merged, curve.last().unwrap().1);
}

#[test]
fn scheduling_finds_task_parallelism_in_cg() {
    use depprof::analysis::{max_wave_width, schedule_waves, section_dag, SectionMeta};
    let w = &nas_suite(Scale(0.05))[5]; // CG
    let r = depprof::profile_sequential_perfect(&w.program);
    let sections: Vec<SectionMeta> = w
        .program
        .loops
        .iter()
        .map(|l| SectionMeta { id: l.id, name: l.name.clone(), begin: l.begin, end: l.end })
        .collect();
    let dag = section_dag(&r, &sections);
    let waves = schedule_waves(&dag);
    // CG's init loops touch disjoint arrays: the first wave must contain
    // several independent sections (task parallelism a runtime scheduler
    // could exploit — the paper's third motivating use case).
    assert!(max_wave_width(&waves) >= 3, "waves: {waves:?}");
    // And the dataflow chain spmv -> dot products forces >1 wave.
    assert!(waves.len() >= 2, "waves: {waves:?}");
}
