//! Signature-gauge validation against the perfect-signature ground truth.
//!
//! The metrics snapshot reports slot occupancy, eviction counts and an
//! estimated false-positive rate for the signature stores. A
//! [`PerfectSignature`] is collision-free by construction, so its gauges
//! are exact ground truth: occupancy is the number of distinct live
//! addresses and an "eviction" is precisely an overwrite of an existing
//! key. A real signature must agree wherever it had no collisions and
//! can only report *more* evictions (hash collisions add overwrites), so
//! the comparison bounds the gauge from both sides on real workload
//! streams from `dp-trace::workloads`.

use depprof::core::SequentialProfiler;
use depprof::sig::{ExtendedSlot, Signature};
use depprof::trace::workloads::{starbench_suite, Scale};
use depprof::trace::Interp;
use depprof::types::{FxHashSet, TraceEvent, Tracer};

/// Records the raw event stream so the same workload can be replayed
/// into several engines and inspected for ground-truth address counts.
#[derive(Default)]
struct Recorder(Vec<TraceEvent>);

impl Tracer for Recorder {
    fn event(&mut self, ev: TraceEvent) {
        self.0.push(ev);
    }
}

fn kmeans_events() -> Vec<TraceEvent> {
    let w = starbench_suite(Scale(0.05))
        .into_iter()
        .find(|w| w.meta.name == "kmeans")
        .expect("kmeans workload");
    let mut rec = Recorder::default();
    Interp::new(&w.program).run_seq(&mut rec);
    assert!(!rec.0.is_empty());
    rec.0
}

fn run<S: depprof::sig::AccessStore>(
    mut p: SequentialProfiler<S>,
    evs: &[TraceEvent],
) -> depprof::core::ProfileResult {
    for e in evs {
        p.on_event(e);
    }
    p.finish()
}

#[test]
fn huge_signature_gauges_match_perfect_ground_truth() {
    let evs = kmeans_events();
    let perfect = run(SequentialProfiler::perfect(), &evs);
    let huge = run(
        SequentialProfiler::with_stores(
            Signature::<ExtendedSlot>::new(1 << 22),
            Signature::<ExtendedSlot>::new(1 << 22),
        ),
        &evs,
    );
    if !perfect.metrics.enabled {
        return; // metrics compiled out: gauges are all zero by design
    }
    let p = &perfect.metrics.signatures;
    let h = &huge.metrics.signatures;

    // Perfect ground truth: occupancy == live distinct addresses; the
    // exact store has no fixed slot array, so capacity reads zero.
    let distinct: FxHashSet<u64> = evs
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Access(a) => Some(a.addr),
            _ => None,
        })
        .collect();
    assert!(p.occupied_slots > 0);
    assert!(p.occupied_slots <= 2 * distinct.len() as u64, "read + write stores");
    assert_eq!(p.total_slots, 0);
    assert_eq!(p.est_fpr_pct, 0.0, "an exact store has no false positives");

    // The real signature can never fit more entries than distinct
    // addresses, and collisions only ever *add* evictions.
    assert!(h.occupied_slots <= p.occupied_slots);
    assert!(h.evictions >= p.evictions, "huge {} < perfect {}", h.evictions, p.evictions);
    assert_eq!(h.total_slots, 2 * (1 << 22));
    assert!(h.est_fpr_pct > 0.0 && h.est_fpr_pct < 1.0, "fpr {}", h.est_fpr_pct);

    // With no slot sharing the gauges must agree exactly; occupancy
    // equality is precisely the no-collision certificate.
    if h.occupied_slots == p.occupied_slots {
        assert_eq!(
            h.evictions, p.evictions,
            "collision-free signature must count exactly the ground-truth overwrites"
        );
    }
}

#[test]
fn tiny_signature_reports_strictly_more_evictions_and_higher_fpr() {
    let evs = kmeans_events();
    let perfect = run(SequentialProfiler::perfect(), &evs);
    let tiny = run(
        SequentialProfiler::with_stores(
            Signature::<ExtendedSlot>::new(64),
            Signature::<ExtendedSlot>::new(64),
        ),
        &evs,
    );
    if !perfect.metrics.enabled {
        return;
    }
    let p = &perfect.metrics.signatures;
    let t = &tiny.metrics.signatures;
    assert_eq!(t.total_slots, 128);
    assert!(t.occupied_slots <= 128);
    // Hundreds of distinct addresses hashed into 64 slots: collisions
    // are certain, so the tiny signature must overwrite strictly more
    // often than the collision-free baseline.
    assert!(t.evictions > p.evictions, "tiny {} <= perfect {}", t.evictions, p.evictions);
    // Saturated occupancy drives the Formula-2 estimate far above the
    // huge signature's; both stay in (0, 100].
    assert!(t.est_fpr_pct > 1.0 && t.est_fpr_pct <= 100.0, "fpr {}", t.est_fpr_pct);
}

/// The parallel engine aggregates gauges across workers: summed slots
/// and occupancy, max estimated FPR — and they survive into the final
/// snapshot alongside the conservation counters.
#[test]
fn parallel_snapshot_carries_aggregated_gauges() {
    use depprof::core::parallel::AnyParallelProfiler;
    use depprof::core::{ProfilerConfig, TransportKind};
    let evs = kmeans_events();
    let cfg = ProfilerConfig::default()
        .with_workers(4)
        .with_slots(1 << 16)
        .with_transport(TransportKind::Spsc);
    let mut p: AnyParallelProfiler<Signature<ExtendedSlot>> =
        AnyParallelProfiler::new(cfg.clone(), move || Signature::new(cfg.slots_per_worker()));
    for e in &evs {
        p.event(*e);
    }
    let r = p.finish();
    if !r.metrics.enabled {
        return;
    }
    let g = &r.metrics.signatures;
    // 4 workers × 2 stores × slots_per_worker slots.
    assert_eq!(g.total_slots, 4 * 2 * ((1u64 << 16) / 4));
    assert!(g.occupied_slots > 0);
    assert!(g.occupied_slots <= g.total_slots);
    assert!(g.est_fpr_pct >= 0.0 && g.est_fpr_pct <= 100.0);
}
