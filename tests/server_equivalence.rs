//! The service layer must not change a single dependence: a trace
//! streamed to `dp-server` over the DPSV protocol produces the same
//! profile as `depprof replay` on the same trace.
//!
//! Two layers of proof:
//!
//! 1. **In-process, every workload** — the socket-free [`SessionEngine`]
//!    is driven frame-by-frame (exactly what a connection handler does)
//!    and its [`ProfileResult`] is compared dependence-for-dependence
//!    against an offline [`ProfileSession`] replay of the same events.
//! 2. **Over a real socket, concurrently** — a loopback TCP server runs
//!    multiple sessions at once and every client's *report bytes* must
//!    equal the offline render, proving session isolation end to end.

use depprof::core::{report, ProfileResult, SessionSpec};
use depprof::server::{push_events, PushOptions, Server, ServerConfig, SessionEngine};
use depprof::trace::workloads::{nas_suite, starbench_suite, synth, Scale, Workload};

use depprof::trace::{FrameChunker, Interp, TraceReader, TraceWriter};
use depprof::types::protocol::{Frame, Hello};
use depprof::types::{Interner, TraceEvent};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

type DepMap = BTreeMap<String, u64>;

fn dep_map(r: &ProfileResult) -> DepMap {
    r.deps
        .dependences()
        .map(|(d, v)| {
            (
                format!(
                    "{:?} {}|{} <- {}|{} var{}",
                    d.edge.dtype,
                    d.sink.loc,
                    d.sink.thread,
                    d.edge.source_loc,
                    d.edge.source_thread,
                    d.edge.var
                ),
                v.count,
            )
        })
        .collect()
}

/// Records a sequential workload into an in-memory trace and hands back
/// its events, interner and name table in id order — the exact inputs
/// both the offline replay and the network push start from.
fn record(w: &Workload) -> (Vec<TraceEvent>, Interner, Vec<String>) {
    let mut wtr = TraceWriter::with_names(Vec::new(), &w.program.interner).unwrap();
    Interp::new(&w.program).run_seq(&mut wtr);
    let bytes = wtr.finish().unwrap();
    let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
    let interner = reader.interner().clone();
    let mut events = Vec::new();
    for rec in reader.by_ref() {
        events.push(rec.unwrap());
    }
    let names = (0..interner.len()).map(|id| interner.resolve(id as u32).to_owned()).collect();
    (events, interner, names)
}

fn offline(spec: &SessionSpec, events: &[TraceEvent]) -> ProfileResult {
    let mut session = spec.build();
    for ev in events {
        session.on_event(*ev);
    }
    session.finish()
}

/// Drives the socket-free engine exactly like a connection handler:
/// Hello, chunked event frames, then `finish_result` in place of the
/// Finish/Report exchange.
fn served(spec: &SessionSpec, events: &[TraceEvent], names: Vec<String>) -> ProfileResult {
    let hello = Hello { session: "equiv".into(), spec: spec.encode(), checkpoint_every: 0, names };
    let (mut engine, ack) = SessionEngine::open(&hello, 1, None, 0).unwrap();
    assert!(matches!(ack, Frame::HelloAck { resume_from: 0, .. }));
    let mut chunker = FrameChunker::new(64);
    for ev in events {
        for frame in chunker.push(*ev) {
            engine.handle(frame).unwrap();
        }
    }
    if let Some(frame) = chunker.flush() {
        engine.handle(frame).unwrap();
    }
    engine.finish_result().expect("engine still live before Finish")
}

fn sequential_workloads() -> Vec<Workload> {
    let mut all = nas_suite(Scale(0.08));
    all.extend(starbench_suite(Scale(0.08)));
    all.push(synth::uniform(64, 4_000));
    all.retain(|w| !w.meta.parallel);
    all
}

/// Every sequential workload, serial engine: the served profile is the
/// offline profile, dependence for dependence.
#[test]
fn served_equals_offline_serial_all_workloads() {
    for w in sequential_workloads() {
        let (events, _, names) = record(&w);
        let spec = SessionSpec { slots: 1 << 16, ..SessionSpec::default() };
        let off = offline(&spec, &events);
        let srv = served(&spec, &events, names);
        assert_eq!(dep_map(&srv), dep_map(&off), "workload {}", w.meta.name);
        assert_eq!(srv.stats.accesses, off.stats.accesses, "workload {}", w.meta.name);
    }
}

/// Same equivalence through the parallel pipeline spec — the engine the
/// server builds from the Hello is the one replay would build.
#[test]
fn served_equals_offline_parallel() {
    for w in sequential_workloads().into_iter().take(3) {
        let (events, _, names) = record(&w);
        let spec =
            SessionSpec { parallel: true, workers: 3, slots: 3 << 14, ..SessionSpec::default() };
        let off = offline(&spec, &events);
        let srv = served(&spec, &events, names);
        assert_eq!(dep_map(&srv), dep_map(&off), "workload {}", w.meta.name);
    }
}

/// Loopback TCP, concurrent sessions: N clients push different
/// workloads at the same time; every returned report must be byte-
/// identical to the offline render of that workload.
#[test]
fn concurrent_tcp_sessions_match_offline_reports() {
    static STOP: AtomicBool = AtomicBool::new(false);

    let server = Server::bind_tcp(
        "127.0.0.1:0",
        ServerConfig { max_sessions: 8, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run(&STOP).unwrap());

    let workloads: Vec<Workload> = sequential_workloads().into_iter().take(4).collect();
    let mut clients = Vec::new();
    for w in workloads {
        clients.push(std::thread::spawn(move || {
            let (events, interner, names) = record(&w);
            let spec = SessionSpec { slots: 1 << 16, ..SessionSpec::default() };
            let expected = {
                let r = offline(&spec, &events);
                report::render(&r, &interner, false)
            };
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            let opts = PushOptions {
                session: format!("conc-{}", w.meta.name),
                spec,
                chunk_events: 128,
                request_stats: true,
                ..PushOptions::default()
            };
            let out = push_events(&mut conn, names, events, &opts).unwrap();
            assert_eq!(out.report, expected, "report bytes differ for {}", w.meta.name);
            let stats = out.stats_json.expect("stats were requested");
            assert!(stats.contains("\"events\""), "stats json: {stats}");
        }));
    }
    for c in clients {
        c.join().unwrap();
    }

    STOP.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}

/// The capacity cap is enforced with a typed error, not a hang: with
/// `max_sessions = 0` every client is turned away at Hello time.
#[test]
fn at_capacity_is_a_typed_refusal() {
    static STOP: AtomicBool = AtomicBool::new(false);

    let server = Server::bind_tcp(
        "127.0.0.1:0",
        ServerConfig { max_sessions: 0, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run(&STOP).unwrap());

    let all = sequential_workloads();
    let (events, _, names) = record(&all[0]);
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    let err = push_events(&mut conn, names, events, &PushOptions::default()).unwrap_err();
    match err {
        depprof::server::ClientError::Busy { retry_after_ms } => {
            assert!(retry_after_ms > 0, "Busy must carry a concrete retry hint");
        }
        other => panic!("wanted Busy{{retry_after_ms}}, got {other:?}"),
    }

    STOP.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}
