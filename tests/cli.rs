//! End-to-end tests of the `depprof` command-line tool.

use std::process::Command;

fn depprof(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_depprof")).args(args).output().expect("spawn depprof")
}

#[test]
fn list_names_all_suites() {
    let out = depprof(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["BT", "c-ray", "water-spatial", "racy-counter"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

#[test]
fn profile_report_has_figure1_shape() {
    let out = depprof(&["profile", "EP", "--scale", "0.02"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("BGN loop"), "{text}");
    assert!(text.contains("{INIT *}"), "{text}");
}

#[test]
fn analyze_runs_framework() {
    let out = depprof(&["profile", "FT", "--scale", "0.02", "--analyze"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("parallelism-discovery"));
    assert!(text.contains("execution-tree"));
    assert!(text.contains("reduction"), "{text}");
}

#[test]
fn csv_mode_is_machine_readable() {
    let out = depprof(&["profile", "MG", "--scale", "0.02", "--csv"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let mut lines = text.lines();
    assert!(lines.next().unwrap().starts_with("type,sink"));
    assert!(lines.clone().count() > 3);
    assert!(lines.all(|l| l.is_empty() || l.split(',').count() == 9));
}

#[test]
fn record_then_replay_roundtrips() {
    let dir = std::env::temp_dir().join("depprof-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("cg.dptr");
    let trace_s = trace.to_str().unwrap();
    let rec = depprof(&["record", "CG", "--scale", "0.02", "--out", trace_s]);
    assert!(rec.status.success(), "{}", String::from_utf8_lossy(&rec.stderr));
    let rep = depprof(&["replay", trace_s]);
    assert!(rep.status.success(), "{}", String::from_utf8_lossy(&rep.stderr));
    let text = String::from_utf8_lossy(&rep.stdout);
    // Variable names resolve from the embedded table.
    assert!(text.contains("|colidx}") || text.contains("|x}"), "{text}");
    std::fs::remove_file(&trace).ok();
}

#[test]
fn unknown_workload_fails_cleanly() {
    let out = depprof(&["profile", "nonexistent"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn recording_parallel_targets_is_refused() {
    let out = depprof(&["record", "water-spatial", "--scale", "0.02"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not supported"));
}
