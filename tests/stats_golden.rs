//! Golden-file test for `depprof --stats json`.
//!
//! The JSON snapshot is a machine-readable interface (CI pipes it into
//! `jq`), so its *shape* — key names, key order, nesting — is contract.
//! This test pins the complete output of a deterministic run against a
//! checked-in golden file, with timing-dependent values masked:
//! deterministic fields (event counts, chunk counts, signature occupancy,
//! hot addresses) must match exactly.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test stats_golden
//! ```

use std::process::Command;

/// Fields whose values depend on scheduling or the wall clock, masked to
/// `#` before comparison. Everything else must be bit-identical.
/// (`est_fpr_pct` is deterministic in theory but rides on `ln`, whose
/// last ulp varies across libm builds — masked for robustness.)
const VOLATILE_KEYS: &[&str] = &[
    "queue_highwater",
    "push_retries",
    "empty_pops",
    "stall_nanos",
    "est_fpr_pct",
    "feed",
    "drain",
    "total",
];

fn mask(s: &str) -> String {
    let mut out = s.to_string();
    for key in VOLATILE_KEYS {
        let pat = format!("\"{key}\": ");
        let mut from = 0;
        while let Some(p) = out[from..].find(&pat) {
            let start = from + p + pat.len();
            let end = out[start..]
                .find(|c: char| !(c.is_ascii_digit() || c == '.'))
                .map(|e| start + e)
                .unwrap_or(out.len());
            out.replace_range(start..end, "#");
            from = start + 1;
        }
    }
    out
}

#[test]
fn stats_json_matches_golden() {
    let out = Command::new(env!("CARGO_BIN_EXE_depprof"))
        .args([
            "profile",
            "kmeans",
            "--engine",
            "parallel",
            "--workers",
            "4",
            "--scale",
            "0.05",
            "--stats",
            "json",
        ])
        .output()
        .expect("spawn depprof");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let got = mask(&String::from_utf8_lossy(&out.stdout));

    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/stats_kmeans.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "--stats json drifted from the golden snapshot; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The text format is for humans, so only its skeleton is pinned: every
/// section line must be present, and the conservation line must say the
/// law holds on a healthy run.
#[test]
fn stats_text_has_all_sections() {
    let out = Command::new(env!("CARGO_BIN_EXE_depprof"))
        .args([
            "profile",
            "kmeans",
            "--engine",
            "parallel",
            "--workers",
            "4",
            "--scale",
            "0.05",
            "--stats",
            "text",
        ])
        .output()
        .expect("spawn depprof");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["metrics:", "workers: 4", "conservation:", "chunks:", "signatures:", "timings:"]
    {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    if text.contains("metrics: enabled") {
        assert!(text.contains("(law holds)"), "{text}");
    }
}

/// `--stats` must keep stdout pure: the report, banners and warnings all
/// stay on stderr so `depprof ... --stats json | jq .` always parses.
#[test]
fn stats_stdout_is_pure_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_depprof"))
        .args(["profile", "EP", "--scale", "0.02", "--stats", "json"])
        .output()
        .expect("spawn depprof");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let trimmed = text.trim();
    assert!(trimmed.starts_with('{') && trimmed.ends_with('}'), "{text}");
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty(), "banner belongs on stderr");
}

/// A degraded run still emits the full snapshot on stdout and signals
/// the loss through exit code 5 + stderr, so scripts can both parse the
/// counters and detect the degradation.
#[cfg(feature = "fault-inject")]
#[test]
fn stats_json_surfaces_degradation_via_exit_code() {
    let out = Command::new(env!("CARGO_BIN_EXE_depprof"))
        .args([
            "profile",
            "kmeans",
            "--engine",
            "parallel",
            "--workers",
            "4",
            "--scale",
            "0.05",
            "--inject-panic",
            "1@0",
            "--stats",
            "json",
        ])
        .output()
        .expect("spawn depprof");
    assert_eq!(out.status.code(), Some(5), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.trim().starts_with('{'), "{text}");
    assert!(text.contains("\"conservation\""), "{text}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("WARNING"), "warning on stderr");
}
