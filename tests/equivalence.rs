//! Cross-engine equivalence: the parallel pipelines must produce exactly
//! the dependences of the serial engine (Section IV: "we can easily ensure
//! that our parallel profiler produces the same data dependences as the
//! serial version").
//!
//! All engines here use the exact (perfect-signature) store so any
//! discrepancy is a pipeline bug, not a hash collision.

use depprof::core::parallel::{LockBasedProfiler, LockFreeProfiler};
use depprof::core::{ParallelProfiler, ProfileResult, ProfilerConfig, SequentialProfiler};
use depprof::sig::PerfectSignature;
use depprof::trace::workloads::{nas_suite, starbench_suite, synth, Scale};
use depprof::trace::Interp;
use std::collections::BTreeMap;

type DepMap = BTreeMap<String, u64>;

fn dep_map(r: &ProfileResult) -> DepMap {
    r.deps
        .dependences()
        .map(|(d, v)| {
            (
                format!(
                    "{:?} {}|{} <- {}|{} var{}",
                    d.edge.dtype,
                    d.sink.loc,
                    d.sink.thread,
                    d.edge.source_loc,
                    d.edge.source_thread,
                    d.edge.var
                ),
                v.count,
            )
        })
        .collect()
}

fn serial(program: &depprof::trace::Program) -> ProfileResult {
    let vm = Interp::new(program);
    let mut p = SequentialProfiler::perfect();
    vm.run_seq(&mut p);
    p.finish()
}

fn lockfree(program: &depprof::trace::Program, workers: usize) -> ProfileResult {
    let vm = Interp::new(program);
    let cfg = ProfilerConfig::default().with_workers(workers).with_chunk_capacity(64);
    let mut p: LockFreeProfiler<PerfectSignature> =
        ParallelProfiler::new(cfg, PerfectSignature::new);
    vm.run_seq(&mut p);
    p.finish()
}

fn lockbased(program: &depprof::trace::Program, workers: usize) -> ProfileResult {
    let vm = Interp::new(program);
    let cfg = ProfilerConfig::default().with_workers(workers).with_chunk_capacity(64);
    let mut p: LockBasedProfiler<PerfectSignature> =
        ParallelProfiler::new(cfg, PerfectSignature::new);
    vm.run_seq(&mut p);
    p.finish()
}

#[test]
fn lockfree_equals_serial_on_all_sequential_workloads() {
    let scale = Scale(0.03);
    for w in nas_suite(scale).into_iter().chain(starbench_suite(scale)) {
        let s = serial(&w.program);
        let f = lockfree(&w.program, 4);
        assert_eq!(dep_map(&s), dep_map(&f), "{}: lock-free differs from serial", w.meta.name);
        assert_eq!(s.stats.accesses, f.stats.accesses, "{}", w.meta.name);
        assert_eq!(s.stats.deps_built, f.stats.deps_built, "{}", w.meta.name);
    }
}

#[test]
fn lockbased_equals_lockfree() {
    let scale = Scale(0.03);
    for w in [&starbench_suite(scale)[1], &starbench_suite(scale)[8]] {
        let f = lockfree(&w.program, 3);
        let l = lockbased(&w.program, 3);
        assert_eq!(dep_map(&f), dep_map(&l), "{}", w.meta.name);
    }
}

#[test]
fn worker_count_does_not_change_dependences() {
    let w = synth::uniform(3000, 40_000);
    let baseline = dep_map(&serial(&w.program));
    for workers in [1usize, 2, 3, 7, 16] {
        assert_eq!(dep_map(&lockfree(&w.program, workers)), baseline, "{workers} workers");
    }
}

#[test]
fn redistribution_does_not_change_dependences() {
    let w = synth::skewed(5000, 6, 60_000);
    let baseline = dep_map(&serial(&w.program));
    let vm = Interp::new(&w.program);
    let mut cfg = ProfilerConfig::default().with_workers(4).with_chunk_capacity(32);
    cfg.redistribute_every = 20; // force many redistribution rounds
    let mut p: LockFreeProfiler<PerfectSignature> =
        ParallelProfiler::new(cfg, PerfectSignature::new);
    vm.run_seq(&mut p);
    let r = p.finish();
    assert!(r.stats.redistributions > 0, "test wants redistribution to actually happen");
    assert_eq!(dep_map(&r), baseline);
}

#[test]
fn loop_records_identical_across_engines() {
    let scale = Scale(0.03);
    let w = &nas_suite(scale)[5]; // CG: nested loops + reductions
    let s = serial(&w.program);
    let f = lockfree(&w.program, 4);
    let recs = |r: &ProfileResult| {
        r.deps.loops().map(|(id, rec)| (*id, rec.instances, rec.total_iters)).collect::<Vec<_>>()
    };
    assert_eq!(recs(&s), recs(&f));
}

#[test]
fn signature_engine_with_ample_slots_matches_perfect_on_real_workload() {
    let w = &starbench_suite(Scale(0.05))[2]; // md5: heavy reuse
    let base = dep_map(&serial(&w.program));
    let vm = Interp::new(&w.program);
    let mut p = SequentialProfiler::with_signature(1 << 21);
    vm.run_seq(&mut p);
    let sig = dep_map(&p.finish());
    // Identical dependence sets (counts may differ only if collisions
    // occurred; with 2M slots for a few thousand addresses they must not).
    assert_eq!(base, sig);
}
