//! Property-based tests (proptest) on the profiler's core invariants.

use depprof::core::parallel::{AnyParallelProfiler, LockFreeProfiler};
use depprof::core::{
    ParallelProfiler, ProfileResult, ProfilerConfig, SequentialProfiler, TransportKind,
};
use depprof::sig::{ExtendedSlot, PerfectSignature, Signature};
use depprof::types::{loc::loc, AccessKind, DepType, MemAccess, TraceEvent};
use proptest::prelude::*;

/// A random but well-formed event stream: monotone timestamps, a bounded
/// address set, random read/write mix, occasional deallocations.
fn arb_stream(max_len: usize) -> impl Strategy<Value = Vec<TraceEvent>> {
    let step = prop_oneof![
        8 => (0u64..64, any::<bool>(), 1u32..50).prop_map(|(slot, w, line)| (0u8, slot, w, line)),
        1 => (0u64..8, any::<bool>(), 1u32..50).prop_map(|(slot, _, _)| (1u8, slot, false, 0)),
    ];
    #[allow(clippy::explicit_counter_loop)] // ts is a timestamp, not an index
    prop::collection::vec(step, 1..max_len).prop_map(|steps| {
        let mut ts = 0u64;
        let mut evs = Vec::with_capacity(steps.len());
        for (kind, slot, is_write, line) in steps {
            ts += 1;
            match kind {
                0 => {
                    let a = MemAccess {
                        addr: 0x1000 + slot * 8,
                        ts,
                        loc: loc(1, line),
                        var: 1,
                        thread: 0,
                        kind: if is_write { AccessKind::Write } else { AccessKind::Read },
                    };
                    evs.push(TraceEvent::Access(a));
                }
                _ => {
                    evs.push(TraceEvent::Dealloc {
                        base: 0x1000 + slot * 8 * 8,
                        len: 8,
                        thread: 0,
                        ts,
                    });
                }
            }
        }
        evs
    })
}

fn run_serial_perfect(evs: &[TraceEvent]) -> ProfileResult {
    let mut p = SequentialProfiler::perfect();
    for e in evs {
        p.on_event(e);
    }
    p.finish()
}

fn ident_counts(r: &ProfileResult) -> Vec<(String, u64)> {
    r.deps.dependences().map(|(d, v)| (format!("{:?}", d.identity()), v.count)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The parallel pipeline is event-order faithful: identical output to
    /// the serial engine on any stream.
    #[test]
    fn parallel_equals_serial(evs in arb_stream(400), workers in 1usize..6) {
        let serial = run_serial_perfect(&evs);
        let cfg = ProfilerConfig::default().with_workers(workers).with_chunk_capacity(16);
        let mut par: LockFreeProfiler<PerfectSignature> =
            ParallelProfiler::new(cfg, PerfectSignature::new);
        for e in &evs {
            use depprof::types::Tracer;
            par.event(*e);
        }
        let par = par.finish();
        prop_assert_eq!(ident_counts(&serial), ident_counts(&par));
        prop_assert_eq!(serial.stats.deps_built, par.stats.deps_built);
    }

    /// Transport independence: the SPSC fast path, the lock-free MPMC
    /// build and the lock-based comparator all produce the serial
    /// engine's exact dependence set on any stream — the bit-identical
    /// guarantee the transport abstraction promises.
    #[test]
    fn every_transport_equals_serial(evs in arb_stream(400), workers in 1usize..6) {
        let serial = run_serial_perfect(&evs);
        let expected = ident_counts(&serial);
        for kind in [TransportKind::Spsc, TransportKind::Mpmc, TransportKind::Lock] {
            let cfg = ProfilerConfig::default()
                .with_workers(workers)
                .with_chunk_capacity(16)
                .with_transport(kind);
            let mut par: AnyParallelProfiler<PerfectSignature> =
                AnyParallelProfiler::new(cfg, PerfectSignature::new);
            for e in &evs {
                use depprof::types::Tracer;
                par.event(*e);
            }
            let par = par.finish();
            prop_assert_eq!(&expected, &ident_counts(&par), "transport {:?}", kind);
            prop_assert_eq!(serial.stats.deps_built, par.stats.deps_built);
        }
    }

    /// deps_built always equals the sum of merged record counts.
    #[test]
    fn merge_preserves_total_count(evs in arb_stream(300)) {
        let r = run_serial_perfect(&evs);
        let total: u64 = r.deps.dependences().map(|(_, v)| v.count).sum();
        prop_assert_eq!(total, r.stats.deps_built);
    }

    /// An over-provisioned signature behaves exactly like the perfect one.
    #[test]
    fn big_signature_is_exact(evs in arb_stream(300)) {
        let base = run_serial_perfect(&evs);
        let mut p = SequentialProfiler::with_stores(
            Signature::<ExtendedSlot>::new(1 << 16),
            Signature::<ExtendedSlot>::new(1 << 16),
        );
        for e in &evs {
            p.on_event(e);
        }
        let sig = p.finish();
        // 64 addresses vs 65536 slots: collisions are possible only if two
        // of the 64 fixed addresses hash together, which they don't.
        prop_assert_eq!(ident_counts(&base), ident_counts(&sig));
    }

    /// Dependence typing invariants from Algorithm 1: RAW sinks are reads,
    /// WAR/WAW/INIT sinks are writes — encoded in what the engine may emit.
    #[test]
    fn dependence_type_invariants(evs in arb_stream(300)) {
        let r = run_serial_perfect(&evs);
        // Reconstruct per-address first-writes to validate INIT counts:
        let mut inits = 0u64;
        let mut seen = std::collections::HashSet::new();
        for e in &evs {
            match e {
                TraceEvent::Access(a) if a.kind == AccessKind::Write
                    && seen.insert(a.addr) => {
                        inits += 1;
                    }
                TraceEvent::Dealloc { base, len, .. } => {
                    for i in 0..*len {
                        seen.remove(&(base + i * 8));
                    }
                }
                _ => {}
            }
        }
        let init_count: u64 = r
            .deps
            .dependences()
            .filter(|(d, _)| d.edge.dtype == DepType::Init)
            .map(|(_, v)| v.count)
            .sum();
        prop_assert_eq!(init_count, inits);
    }

    /// The report renders deterministically and mentions every sink line.
    #[test]
    fn report_is_deterministic(evs in arb_stream(200)) {
        let r1 = run_serial_perfect(&evs);
        let r2 = run_serial_perfect(&evs);
        let interner = depprof::types::Interner::new();
        let a = depprof::core::report::render(&r1, &interner, false);
        let b = depprof::core::report::render(&r2, &interner, false);
        prop_assert_eq!(&a, &b);
        for (sink, _) in r1.deps.sinks() {
            prop_assert!(a.contains(&sink.loc.to_string()));
        }
    }

    /// Signature accounting: occupancy never exceeds slot count, memory is
    /// constant regardless of inserted volume.
    #[test]
    fn signature_bounded(addrs in prop::collection::vec(any::<u64>(), 1..500)) {
        use depprof::sig::AccessStore;
        let mut s = Signature::<ExtendedSlot>::new(128);
        let mem0 = s.memory_usage();
        for (i, a) in addrs.iter().enumerate() {
            s.put(*a, depprof::sig::SigEntry::new(loc(1, i as u32 % 100 + 1), 0, i as u64));
            prop_assert!(s.occupied() <= 128);
        }
        prop_assert_eq!(s.memory_usage(), mem0);
    }
}
