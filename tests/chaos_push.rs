//! Kill-at-any-frame: the retry/resume client must deliver a profile
//! byte-identical to an uninterrupted push no matter where in the DPSV
//! stream the connection dies.
//!
//! The sweep first measures a clean push to learn the exact number of
//! frames the client writes, then replays the same push once per frame
//! boundary with a seeded [`ChaosStream`] that resets the connection at
//! that boundary. `push_with_retry` reconnects, resumes from the
//! server's `HelloAck` watermark, and the final report must equal the
//! clean run's — at-least-once delivery, exactly-once profiling.
//!
//! A proptest leg extends the sweep to byte-offset resets combined with
//! duplicate delivery and short reads/writes.

use depprof::core::SessionSpec;
use depprof::server::{
    push_with_retry, ChaosStream, NetFaultPlan, PushOptions, RetryPolicy, Server, ServerConfig,
};
use depprof::trace::workloads::synth;
use depprof::trace::{Interp, TraceReader, TraceWriter};
use depprof::types::TraceEvent;
use proptest::prelude::*;
use std::cell::Cell;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Records the synthetic workload both the clean and the interrupted
/// pushes stream: small enough that a per-frame sweep stays fast, big
/// enough to span many frames and several Sync probes. Loop iteration
/// markers ride in their own frames, so even this short stream crosses
/// ~100 frame boundaries.
fn record() -> (Vec<TraceEvent>, Vec<String>) {
    let w = synth::uniform(64, 120);
    let mut wtr = TraceWriter::with_names(Vec::new(), &w.program.interner).unwrap();
    Interp::new(&w.program).run_seq(&mut wtr);
    let bytes = wtr.finish().unwrap();
    let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
    let interner = reader.interner().clone();
    let mut events = Vec::new();
    for rec in reader.by_ref() {
        events.push(rec.unwrap());
    }
    let names = (0..interner.len()).map(|id| interner.resolve(id as u32).to_owned()).collect();
    (events, names)
}

/// A pass-through [`ChaosStream`] that publishes its written-frame count
/// on drop, so the sweep knows how many boundaries a clean push crosses.
struct FrameCounter {
    inner: ChaosStream<TcpStream>,
    total: Arc<AtomicU64>,
}

impl Read for FrameCounter {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for FrameCounter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Drop for FrameCounter {
    fn drop(&mut self) {
        self.total.store(self.inner.frames_written(), Ordering::SeqCst);
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dp-chaos-push-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(
    ckpt: PathBuf,
    stop: &'static AtomicBool,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 8,
            checkpoint_dir: Some(ckpt),
            checkpoint_every: 256,
            // The sweep reconnects constantly; a tight accept poll keeps
            // it about the protocol, not the server's idle sleep.
            poll_interval_ms: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind chaos test server");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run(stop).unwrap());
    (addr, handle)
}

fn opts(session: &str, spec: &SessionSpec) -> PushOptions {
    PushOptions {
        session: session.to_string(),
        spec: *spec,
        chunk_events: 64,
        sync_every_chunks: 4,
        request_stats: true,
        ..PushOptions::default()
    }
}

fn policy() -> RetryPolicy {
    // Tight backoff: the sweep injects exactly one fault per run, so the
    // budget is about latency, not survival under sustained loss. The
    // attempt headroom absorbs Busy waits while the server finishes the
    // dead connection's emergency checkpoint.
    RetryPolicy { max_attempts: 50, base_delay_ms: 1, max_delay_ms: 8, seed: 7 }
}

/// Kills the connection at every frame boundary `0..total` and asserts
/// every resumed run reproduces the clean report byte for byte.
fn kill_at_every_frame(tag: &str, spec: &SessionSpec, stop: &'static AtomicBool) {
    let (events, names) = record();
    let dir = tmpdir(tag);
    let (addr, server) = start_server(dir.clone(), stop);

    // Clean run: the oracle report, plus the frame count of the stream.
    let total_frames = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&total_frames);
    let clean = push_with_retry(
        || {
            let c = TcpStream::connect(addr)?;
            c.set_nodelay(true).ok();
            Ok(FrameCounter {
                inner: ChaosStream::new(c, NetFaultPlan::new()),
                total: Arc::clone(&counter),
            })
        },
        &names,
        &events,
        &opts(&format!("{tag}-clean"), spec),
        &policy(),
    )
    .expect("clean push");
    assert_eq!(clean.reconnects, 0, "clean run must not retry");
    let total = total_frames.load(Ordering::SeqCst);
    assert!(total > 20, "workload too small to be a meaningful sweep: {total} frames");

    let mut resumed_runs = 0u64;
    for cut in 0..total {
        let attempts = Cell::new(0u32);
        let r = push_with_retry(
            || {
                let c = TcpStream::connect(addr)?;
                c.set_nodelay(true).ok();
                let n = attempts.get();
                attempts.set(n + 1);
                // First connection dies at the cut; retries run clean.
                let plan = if n == 0 {
                    NetFaultPlan::new().with_seed(cut | 1).with_reset_at_frames(cut)
                } else {
                    NetFaultPlan::new()
                };
                Ok(ChaosStream::new(c, plan))
            },
            &names,
            &events,
            &opts(&format!("{tag}-cut{cut}"), spec),
            &policy(),
        )
        .unwrap_or_else(|e| panic!("push killed at frame {cut} did not recover: {e}"));
        assert_eq!(
            r.outcome.report, clean.outcome.report,
            "report diverged after a reset at frame {cut}"
        );
        // Exactly one genuine fault; any extra attempts must be typed
        // Busy waits (the reconnect beating the old thread's teardown).
        assert_eq!(
            r.reconnects,
            1 + r.busy_waits,
            "one injected fault at frame {cut} (+{} busy waits)",
            r.busy_waits
        );
        if r.outcome.resumed_from > 0 {
            resumed_runs += 1;
            // The server's per-session snapshot must account the retry.
            let stats = r.outcome.stats_json.as_deref().unwrap_or("");
            assert!(
                stats.contains("\"reconnects\": 1"),
                "cut {cut}: session stats missing the reconnect:\n{stats}"
            );
        }
    }
    // Late cuts land after a checkpointed watermark, so a healthy sweep
    // must exercise genuine mid-stream resumes, not just fresh restarts.
    assert!(resumed_runs > 0, "no cut produced a non-zero resume watermark");

    stop.store(true, Ordering::SeqCst);
    // Nudge the accept loop so it observes the stop flag.
    let _ = TcpStream::connect(addr);
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Watch mode across a chaos reconnect: a server that is not keeping
/// the session durable (no checkpoint dir) hands the retry a fresh
/// session, and the client must surface that as a counted warning
/// (`watch_resets`) instead of silently restarting the live counters.
/// A durable server recovering via its emergency checkpoint must not
/// trip the warning, and neither must a watch-less push.
#[test]
fn watch_reset_warns_on_non_durable_session() {
    static STOP: AtomicBool = AtomicBool::new(false);
    let (events, names) = record();
    let spec = SessionSpec { slots: 1 << 14, ..SessionSpec::default() };
    let watch_opts = |session: &str| PushOptions {
        // Query after every chunk so the watch path is active on both
        // sides of the cut.
        watch_ms: Some(0),
        ..opts(session, &spec)
    };
    // One reset mid-stream, well after the first chunks have landed.
    let cut_connect = |addr: SocketAddr, attempts: &Cell<u32>| {
        let c = TcpStream::connect(addr)?;
        c.set_nodelay(true).ok();
        let n = attempts.get();
        attempts.set(n + 1);
        let plan = if n == 0 {
            NetFaultPlan::new().with_seed(11).with_reset_at_frames(25)
        } else {
            NetFaultPlan::new()
        };
        Ok(ChaosStream::new(c, plan))
    };

    // Non-durable server: reconnect lands in a fresh session => warn.
    let dir = tmpdir("watch-volatile");
    let server = Server::bind_tcp(
        "127.0.0.1:0",
        ServerConfig { max_sessions: 8, poll_interval_ms: 1, ..ServerConfig::default() },
    )
    .expect("bind volatile server");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run(&STOP).unwrap());

    let attempts = Cell::new(0u32);
    let r = push_with_retry(
        || cut_connect(addr, &attempts),
        &names,
        &events,
        &watch_opts("watch-volatile"),
        &policy(),
    )
    .expect("watched push recovers on the volatile server");
    assert!(r.reconnects >= 1, "the injected reset must force a retry");
    assert_eq!(r.outcome.resumed_from, 0, "volatile server cannot resume");
    assert_eq!(r.watch_resets, 1, "fresh-session reconnect must be counted as a watch reset");
    assert!(r.outcome.queries >= 1, "watch mode must issue live queries");
    let json = r.outcome.last_query_json.as_deref().expect("final watch snapshot");
    assert!(
        json.contains(&format!("\"position\":{}", events.len())),
        "final snapshot must cover the whole stream:\n{json}"
    );

    // Same cut without --watch: no watch state, no warning.
    let attempts = Cell::new(0u32);
    let quiet = push_with_retry(
        || cut_connect(addr, &attempts),
        &names,
        &events,
        &opts("watch-off", &spec),
        &policy(),
    )
    .expect("watch-less push recovers");
    assert!(quiet.reconnects >= 1);
    assert_eq!(quiet.watch_resets, 0, "watch_resets must stay 0 without --watch");
    assert!(quiet.outcome.last_query_json.is_none());
    stop_server(&STOP, addr, handle);

    // Durable server: the emergency checkpoint preserves the session,
    // so the same watched cut resumes mid-stream without a reset.
    let (addr, handle) = start_server(dir.clone(), &STOP);
    let attempts = Cell::new(0u32);
    let r = push_with_retry(
        || cut_connect(addr, &attempts),
        &names,
        &events,
        &watch_opts("watch-durable"),
        &policy(),
    )
    .expect("watched push recovers on the durable server");
    assert!(r.reconnects >= 1);
    assert!(r.outcome.resumed_from > 0, "durable server must resume from its checkpoint");
    assert_eq!(r.watch_resets, 0, "a checkpointed resume is not a watch reset");
    stop_server(&STOP, addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_at_every_frame_serial() {
    static STOP: AtomicBool = AtomicBool::new(false);
    let spec = SessionSpec { slots: 1 << 14, ..SessionSpec::default() };
    kill_at_every_frame("serial", &spec, &STOP);
}

#[test]
fn kill_at_every_frame_parallel() {
    static STOP: AtomicBool = AtomicBool::new(false);
    let spec = SessionSpec { parallel: true, workers: 2, slots: 1 << 14, ..SessionSpec::default() };
    kill_at_every_frame("parallel", &spec, &STOP);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Byte-offset resets (which can split a frame mid-header) combined
    /// with duplicate delivery and short I/O still converge on the clean
    /// report: the positional protocol dedupes every replay.
    #[test]
    fn random_byte_cuts_with_duplication_converge(
        cut_bytes in 6u64..40_000,
        dup_every in 0u64..6,
        short in any::<bool>(),
        seed in 1u64..u64::MAX,
    ) {
        static STOP: AtomicBool = AtomicBool::new(false);
        let (events, names) = record();
        let dir = tmpdir(&format!("prop-{cut_bytes}-{seed}"));
        let (addr, server) = start_server(dir.clone(), &STOP);

        let spec = SessionSpec { slots: 1 << 14, ..SessionSpec::default() };
        let clean = push_with_retry(
            || {
                let c = TcpStream::connect(addr)?;
                c.set_nodelay(true).ok();
                Ok(c)
            },
            &names,
            &events,
            &opts("prop-clean", &spec),
            &policy(),
        ).expect("clean push");

        let attempts = Cell::new(0u32);
        let r = push_with_retry(
            || {
                let c = TcpStream::connect(addr)?;
                c.set_nodelay(true).ok();
                let n = attempts.get();
                attempts.set(n + 1);
                let mut plan = NetFaultPlan::new().with_seed(seed);
                if dup_every >= 2 {
                    plan = plan.with_dup_every(dup_every);
                }
                if short {
                    plan = plan.with_short_io();
                }
                // Only the first connection is cut; duplication and
                // short I/O stay on for every retry.
                if n == 0 {
                    plan = plan.with_reset_at_bytes(cut_bytes);
                }
                Ok(ChaosStream::new(c, plan))
            },
            &names,
            &events,
            &opts(&format!("prop-{cut_bytes}-{seed}"), &spec),
            &policy(),
        ).expect("faulted push recovers");
        prop_assert_eq!(&r.outcome.report, &clean.outcome.report);

        stop_server(&STOP, addr, server);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn stop_server(stop: &'static AtomicBool, addr: SocketAddr, server: std::thread::JoinHandle<()>) {
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr);
    server.join().unwrap();
    stop.store(false, Ordering::SeqCst);
}
